//! The staged read pipeline — CROSS-LIB's hot path, decomposed.
//!
//! Every intercepted access runs the same fixed sequence of named
//! stages, threaded through one [`ReadCtx`]:
//!
//! ```text
//! classify ─▶ predict ─▶ prefetch-plan ─▶ cache-probe ─▶ demand-fill ─▶ account
//!     │                                                      │
//!     └────────────── (passthrough route) ────────────▶ demand-fill ─▶ account
//! ```
//!
//! Stage order is semantic, not incidental: prediction and prefetch
//! planning run *before* the demand fill so the prefetch stream overlaps
//! the blocking I/O instead of trailing it, and the cache probe runs
//! before the fill so staleness (view said cached, OS missed) is
//! observable afterwards in the account stage.
//!
//! Each stage boundary records its virtual-time cost into the per-stage
//! histograms ([`crate::metrics::PipelineStage`]) — the attach points for
//! latency accounting and tracing.
//!
//! Fallibility is a type parameter, not a runtime flag: the demand fill
//! is generic over [`FillMode`], whose infallible instantiation has an
//! uninhabited error type. Both public entry points share one pipeline
//! implementation, and the infallible one discharges the `Result`
//! statically (`match err {}`) — there is no dynamic "this cannot fail"
//! assertion anywhere on the path.

use std::sync::atomic::Ordering;

use predict::{AccessObservation, PredictionEngine, PrefetchDecision};
use simclock::ThreadClock;
use simos::{IoError, ReadOutcome, PAGE_SIZE};

use crate::metrics::{PipelineStage, ReadClass};
use crate::policy::PostReadHook;
use crate::predictor::{AccessPattern, Prediction};
use crate::range_index::RangeIndex;
use crate::runtime::CpFile;
use crate::trace::{LookupOutcome, TraceEventKind};

/// Reads between whole-file refetch rounds in FetchAll mode.
const FETCHALL_REFRESH_READS: u64 = 256;

/// Unexpected-miss pages tolerated before the user-level cache view is
/// discarded and re-imported from the OS.
const STALE_RESYNC_PAGES: u64 = 128;

/// How the demand-fill stage performs its OS read.
///
/// The fallible instantiation consults the device fault plan and can
/// surface `EIO`; the infallible one uses the non-faulting OS surface
/// and its error type is uninhabited, so `Result<_, Self::Error>`
/// collapses at compile time.
pub(crate) trait FillMode {
    /// Error the fill can produce ([`std::convert::Infallible`] for the
    /// non-faulting surface).
    type Error;

    /// Charges the demand read against the OS.
    fn fill(
        file: &CpFile,
        clock: &mut ThreadClock,
        offset: u64,
        len: u64,
    ) -> Result<ReadOutcome, Self::Error>;

    /// Charges the demand read through the ring's vectored crossing,
    /// piggybacking any staged prefetch runs on the same syscall.
    fn ring_fill(
        file: &CpFile,
        clock: &mut ThreadClock,
        offset: u64,
        len: u64,
    ) -> Result<ReadOutcome, Self::Error>;

    /// Charges a write; the read-modify-write head/tail demand reads use
    /// the same fault surface as `fill`.
    fn write_fill(
        file: &CpFile,
        clock: &mut ThreadClock,
        offset: u64,
        len: u64,
    ) -> Result<u64, Self::Error>;
}

/// Fill through the non-faulting OS surface; cannot fail.
pub(crate) struct NeverFails;

impl FillMode for NeverFails {
    type Error = std::convert::Infallible;

    fn fill(
        file: &CpFile,
        clock: &mut ThreadClock,
        offset: u64,
        len: u64,
    ) -> Result<ReadOutcome, Self::Error> {
        Ok(file
            .runtime
            .inner
            .os
            .read_charge(clock, file.fd, offset, len))
    }

    fn ring_fill(
        file: &CpFile,
        clock: &mut ThreadClock,
        offset: u64,
        len: u64,
    ) -> Result<ReadOutcome, Self::Error> {
        Ok(file.ring_fill(clock, offset, len))
    }

    fn write_fill(
        file: &CpFile,
        clock: &mut ThreadClock,
        offset: u64,
        len: u64,
    ) -> Result<u64, Self::Error> {
        Ok(file
            .runtime
            .inner
            .os
            .write_charge(clock, file.fd, offset, len))
    }
}

/// Fill through the fallible OS surface; injected faults surface.
pub(crate) struct MayFail;

impl FillMode for MayFail {
    type Error = IoError;

    fn fill(
        file: &CpFile,
        clock: &mut ThreadClock,
        offset: u64,
        len: u64,
    ) -> Result<ReadOutcome, Self::Error> {
        file.runtime
            .inner
            .os
            .try_read_charge(clock, file.fd, offset, len)
    }

    fn ring_fill(
        file: &CpFile,
        clock: &mut ThreadClock,
        offset: u64,
        len: u64,
    ) -> Result<ReadOutcome, Self::Error> {
        file.try_ring_fill(clock, offset, len)
    }

    fn write_fill(
        file: &CpFile,
        clock: &mut ThreadClock,
        offset: u64,
        len: u64,
    ) -> Result<u64, Self::Error> {
        file.runtime
            .inner
            .os
            .try_write_charge(clock, file.fd, offset, len)
    }
}

/// Per-access pipeline state, built by the classify stage and threaded
/// through every later stage.
pub(crate) struct ReadCtx {
    /// Byte offset of the access.
    offset: u64,
    /// Byte length of the access.
    len: u64,
    /// Whether this is a write (writes skip read-only stages' bodies but
    /// still traverse the pipeline for uniform accounting).
    is_write: bool,
    /// First page of the access.
    p0: u64,
    /// One past the last page of the access.
    p1: u64,
    /// Pages spanned (`p1 - p0`).
    pages: u64,
    /// Virtual time at pipeline entry (end-to-end latency base).
    entry_ns: u64,
    /// Snapshot of `TraceLog::is_enabled` — one relaxed load per access;
    /// every emit site downstream is gated on this bool.
    tracing: bool,
    /// Whether this access carries an open span frame — set when the
    /// span collector is enabled (one relaxed load, the whole cost while
    /// disabled) and this thread opened a frame for a non-write access.
    spans: bool,
    /// Pages of the span the user-level view claimed cached (set by the
    /// cache-probe stage, consumed by the account stage's staleness
    /// check).
    claimed: u64,
    /// Engine output (set by the predict stage, consumed by the
    /// prefetch-plan stage): the strided prediction, any mined
    /// correlation runs, and mining/duel bookkeeping.
    decision: PrefetchDecision,
    /// Page range `[start, end)` of the predicted *next* demand read,
    /// set by the prefetch-plan stage when the ring is on and the
    /// engine's confidence clears the speculation bar; consumed by the
    /// account stage, which pre-issues it through the ring.
    spec_target: Option<(u64, u64)>,
    /// Virtual time the current stage started (stage-latency base).
    stage_start_ns: u64,
}

impl ReadCtx {
    /// Closes the current stage: records its virtual-time cost and starts
    /// timing the next one.
    fn close_stage(&mut self, file: &CpFile, stage: PipelineStage, now: u64) {
        let metrics = &file.runtime.inner.metrics;
        metrics
            .stage_hist(stage)
            .record(now.saturating_sub(self.stage_start_ns));
        self.stage_start_ns = now;
        if self.spans {
            crate::span::close_stage(stage, now);
        }
    }
}

impl CpFile {
    /// Infallible pipeline entry point: reads (or writes, when `is_write`)
    /// through the non-faulting OS surface. Returns the outcome and the
    /// pages spanned (0 on the passthrough route, matching the historic
    /// contract).
    pub(crate) fn pipeline_read(
        &self,
        clock: &mut ThreadClock,
        offset: u64,
        len: u64,
        is_write: bool,
    ) -> (ReadOutcome, u64) {
        match self.run_pipeline::<NeverFails>(clock, offset, len, is_write) {
            Ok(result) => result,
            // Uninhabited: NeverFails::Error is Infallible, so this arm
            // is dead code the compiler can prove — no runtime assertion.
            Err(err) => match err {},
        }
    }

    /// Fallible pipeline entry point (reads only): the demand fill goes
    /// through the fallible OS surface, so an injected transient device
    /// error surfaces to the workload instead of being absorbed.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Io`] when the device fault plan injects an EIO
    /// into a demand-class read.
    pub(crate) fn pipeline_try_read(
        &self,
        clock: &mut ThreadClock,
        offset: u64,
        len: u64,
    ) -> Result<(ReadOutcome, u64), IoError> {
        self.run_pipeline::<MayFail>(clock, offset, len, false)
    }

    /// Fallible pipeline entry point for writes: the read-modify-write
    /// head/tail demand reads go through the fallible OS surface. On a
    /// surfaced fault nothing is dirtied; a retry redoes the whole write.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Io`] when the device fault plan injects an EIO
    /// into the RMW demand reads.
    pub(crate) fn pipeline_try_write(
        &self,
        clock: &mut ThreadClock,
        offset: u64,
        len: u64,
    ) -> Result<(ReadOutcome, u64), IoError> {
        self.run_pipeline::<MayFail>(clock, offset, len, true)
    }

    /// The shared pipeline body. Exactly one of the two routes runs:
    /// passthrough (no CROSS-LIB machinery) or the full staged sequence.
    fn run_pipeline<F: FillMode>(
        &self,
        clock: &mut ThreadClock,
        offset: u64,
        len: u64,
        is_write: bool,
    ) -> Result<(ReadOutcome, u64), F::Error> {
        let mut ctx = self.stage_classify(clock, offset, len, is_write);

        if !self.runtime.inner.policy.intercept {
            let outcome = self.stage_demand_fill::<F>(clock, &mut ctx)?;
            self.stage_account_passthrough(clock, &mut ctx, &outcome);
            return Ok((outcome, 0));
        }

        self.stage_predict(clock, &mut ctx);
        self.stage_prefetch_plan(clock, &mut ctx);
        self.stage_cache_probe(clock, &mut ctx);
        let outcome = self.stage_demand_fill::<F>(clock, &mut ctx)?;
        self.stage_account(clock, &mut ctx, &outcome);
        let pages = ctx.pages;
        Ok((outcome, pages))
    }

    /// Stage 1 — classify: entry bookkeeping. Counts the access, does the
    /// page math, snapshots the tracing flag. Routing (passthrough vs
    /// intercepted) is decided by the caller from the policy table.
    fn stage_classify(
        &self,
        clock: &mut ThreadClock,
        offset: u64,
        len: u64,
        is_write: bool,
    ) -> ReadCtx {
        let inner = &self.runtime.inner;
        let entry_ns = clock.now();
        // One relaxed load; every emit site below is gated on this bool,
        // so disabled tracing costs exactly this on the read path.
        let tracing = inner.trace.is_enabled();
        if is_write {
            inner.stats.writes.incr();
        } else {
            inner.stats.reads.incr();
        }
        let p0 = offset / PAGE_SIZE;
        let p1 = (offset + len.max(1)).div_ceil(PAGE_SIZE);
        // Same contract as tracing: one relaxed load while disabled. A
        // frame only opens for reads (writes traverse untraced), and only
        // if this thread has no frame in flight already.
        let spans = !is_write
            && inner.spans.is_enabled()
            && crate::span::begin(
                inner.spans.next_req_id(),
                self.file.ino.0,
                p0,
                p1 - p0,
                entry_ns,
                self.runtime.registry_wait_now(),
            );
        let mut ctx = ReadCtx {
            offset,
            len,
            is_write,
            p0,
            p1,
            pages: p1 - p0,
            entry_ns,
            tracing,
            spans,
            claimed: 0,
            decision: PrefetchDecision::default(),
            spec_target: None,
            stage_start_ns: entry_ns,
        };
        ctx.close_stage(self, PipelineStage::Classify, clock.now());
        ctx
    }

    /// Stage 2 — predict: one engine step per intercepted access (cheap,
    /// §4.6's per-descriptor pattern classification, generalised to the
    /// pluggable engines), plus the pattern-flip trace event. The strided
    /// engine's step is the historical predictor step exactly — one clock
    /// advance, one `on_access`, nothing else.
    fn stage_predict(&self, clock: &mut ThreadClock, ctx: &mut ReadCtx) {
        let runtime = &self.runtime;
        let inner = &runtime.inner;
        if inner.policy.features.predict {
            clock.advance(inner.os.config().costs.predictor_step_ns);
            let aggressive_ok =
                inner.policy.features.aggressive && runtime.aggressive_allowed(clock.now());
            ctx.decision = self.engine.lock().observe(&AccessObservation {
                page: ctx.p0,
                pages: ctx.pages,
                aggressive_ok,
                max_prefetch_pages: inner.config.max_prefetch_pages,
            });
        }
        if ctx.tracing {
            if let Some(pred) = &ctx.decision.prediction {
                let index = pred.pattern.index();
                let prev = self.last_pattern.swap(index, Ordering::Relaxed);
                if prev != index {
                    inner.trace.emit(
                        clock.now(),
                        TraceEventKind::PredictorFlip {
                            ino: self.file.ino,
                            from: AccessPattern::from_index(prev),
                            to: pred.pattern,
                        },
                    );
                }
            }
        }
        ctx.close_stage(self, PipelineStage::Predict, clock.now());
    }

    /// Stage 3 — prefetch-plan: issue the consumption-paced prefetch for
    /// the prediction *before* performing the I/O — the shim intercepts
    /// at syscall entry, so the prefetch stream overlaps the demand fill
    /// instead of trailing it.
    fn stage_prefetch_plan(&self, clock: &mut ThreadClock, ctx: &mut ReadCtx) {
        let inner = &self.runtime.inner;
        // Speculative pre-issue target (ring only): when the engine's
        // confidence clears the bar, the predicted *next* demand read —
        // same size as this one, adjacent in the stream's direction. The
        // account stage issues it after this access settles; the issue
        // path re-checks that normal prefetch has not covered it.
        if inner.policy.ring
            && ctx.pages > 0
            && ctx.decision.confidence >= inner.config.ring_spec_confidence
        {
            if let Some(pred) = &ctx.decision.prediction {
                if pred.prefetch_pages > 0 {
                    use crate::predictor::Direction;
                    let file_pages = inner.os.fs().size(self.file.ino).div_ceil(PAGE_SIZE);
                    ctx.spec_target = match pred.direction {
                        Direction::Forward => {
                            let end = (ctx.p1 + ctx.pages).min(file_pages);
                            (ctx.p1 < end).then_some((ctx.p1, end))
                        }
                        Direction::Backward => {
                            let start = ctx.p0.saturating_sub(ctx.pages);
                            (start < ctx.p0).then_some((start, ctx.p0))
                        }
                    };
                }
            }
        }
        // Cross-tier promotion: a high-confidence forward stream's
        // predicted window doubles as a placement hint — copy it
        // remote→local in the background (planner-deduped, worker-pool
        // issued) so the demand reads that follow land on the fast tier.
        if inner.planner.is_some() && !ctx.is_write {
            self.maybe_promote(clock, ctx);
        }
        let decision = std::mem::take(&mut ctx.decision);
        if let Some(pred) = decision.prediction {
            self.paced_prefetch(clock, pred, ctx.p0, ctx.p1);
        }
        // Correlation runs, duel bookkeeping, deferred mining — all empty
        // for the strided engine, so the default path is unchanged.
        self.apply_engine_decision(clock, &decision);
        // Batched submission: expired batches ride the next intercepted
        // read. One relaxed load when nothing is due (or batching is off).
        self.runtime.flush_due_batches(clock);
        ctx.close_stage(self, PipelineStage::PrefetchPlan, clock.now());
    }

    /// Promotion candidate selection (tiering on only): the access plus
    /// the engine's predicted window, handed to the planner for
    /// confidence gating, frontier dedup, and clamping. Only forward
    /// streams promote — the planner's frontier is monotone, matching
    /// the placement map's word-granular advance.
    fn maybe_promote(&self, clock: &mut ThreadClock, ctx: &ReadCtx) {
        use crate::predictor::Direction;
        let inner = &self.runtime.inner;
        let Some(planner) = &inner.planner else {
            return;
        };
        let Some(pred) = &ctx.decision.prediction else {
            return;
        };
        if pred.prefetch_pages == 0 || !matches!(pred.direction, Direction::Forward) {
            return;
        }
        let file_pages = inner.os.fs().size(self.file.ino).div_ceil(PAGE_SIZE);
        let end = (ctx.p1 + pred.prefetch_pages).min(file_pages);
        if end <= ctx.p0 {
            return;
        }
        // The accessed pages themselves are the hottest evidence, so the
        // candidate starts at the access, not past it; the frontier trims
        // anything already requested.
        if let Some((from, want)) = planner.plan(
            self.file.ino.0,
            ctx.p0,
            end - ctx.p0,
            ctx.decision.confidence,
        ) {
            self.runtime
                .dispatch_promotion(clock, &self.file, from, want);
        }
    }

    /// Stage 4 — cache-probe: how much of this range the user-level view
    /// believes is cached — read before the I/O so staleness is
    /// observable afterwards (account stage).
    fn stage_cache_probe(&self, clock: &mut ThreadClock, ctx: &mut ReadCtx) {
        let runtime = &self.runtime;
        let inner = &runtime.inner;
        let probes = inner.policy.features.visibility && !ctx.is_write;
        if probes {
            let costs = &inner.os.config().costs;
            ctx.claimed = self
                .file
                .tree
                .cached_in(clock, costs, runtime.scope(), ctx.p0, ctx.p1);
        }
        if ctx.tracing && probes {
            let outcome = if ctx.claimed == ctx.pages {
                LookupOutcome::Hit
            } else if ctx.claimed == 0 {
                LookupOutcome::Miss
            } else {
                LookupOutcome::Partial
            };
            inner.trace.emit(
                clock.now(),
                TraceEventKind::TreeLookup {
                    ino: self.file.ino,
                    start_page: ctx.p0,
                    pages: ctx.pages,
                    outcome,
                },
            );
        }
        ctx.close_stage(self, PipelineStage::CacheProbe, clock.now());
    }

    /// Stage 5 — demand-fill: the access itself. Writes charge the write
    /// path; reads go through `F`'s OS surface. On a surfaced fault the
    /// pipeline stops here: pages the fill completed stay cached OS-side
    /// and the user-level view is left unmarked, so a retry re-checks
    /// honestly and reads only what is still missing.
    fn stage_demand_fill<F: FillMode>(
        &self,
        clock: &mut ThreadClock,
        ctx: &mut ReadCtx,
    ) -> Result<ReadOutcome, F::Error> {
        let inner = &self.runtime.inner;
        let outcome = if ctx.is_write {
            let written = match F::write_fill(self, clock, ctx.offset, ctx.len) {
                Ok(written) => written,
                Err(err) => {
                    if inner.policy.intercept {
                        self.file
                            .last_access_ns
                            .store(clock.now(), Ordering::Relaxed);
                    }
                    return Err(self.note_read_error(clock, err, ctx));
                }
            };
            ReadOutcome {
                bytes: written,
                ..ReadOutcome::default()
            }
        } else {
            let ring = inner.policy.ring && !inner.degraded.load(Ordering::Relaxed);
            let mut absorbed = None;
            if ring {
                // Speculative pre-issue first: an exact match absorbs
                // with no crossing; a mismatch cancels (charged wasted).
                absorbed = self.consume_spec(clock, ctx.offset, ctx.len, ctx.tracing);
                // Fully-claimed ranges absorb through the shared bitmap —
                // the ring's zero-crossing completion for cache hits. The
                // OS declines (and we fall through to the crossing) when
                // its authoritative view disagrees with the claim or a
                // demand fetch would beat waiting on in-flight prefetch.
                if absorbed.is_none() && ctx.pages > 0 && ctx.claimed == ctx.pages {
                    absorbed = inner.os.absorb_read(clock, self.fd, ctx.offset, ctx.len);
                }
            }
            let filled = match absorbed {
                Some(outcome) => Ok(outcome),
                // Everything else crosses — as a vectored ring submission
                // that piggybacks staged prefetch runs when the ring is
                // on, or the plain read syscall when it is off.
                None if ring => F::ring_fill(self, clock, ctx.offset, ctx.len),
                None => F::fill(self, clock, ctx.offset, ctx.len),
            };
            match filled {
                Ok(outcome) => outcome,
                Err(err) => {
                    if inner.policy.intercept {
                        self.file
                            .last_access_ns
                            .store(clock.now(), Ordering::Relaxed);
                    }
                    return Err(self.note_read_error(clock, err, ctx));
                }
            }
        };
        ctx.close_stage(self, PipelineStage::DemandFill, clock.now());
        Ok(outcome)
    }

    /// Stage 6 (passthrough route) — account: exit latency histogram and
    /// trace only; no CROSS-LIB state to maintain.
    fn stage_account_passthrough(
        &self,
        clock: &mut ThreadClock,
        ctx: &mut ReadCtx,
        outcome: &ReadOutcome,
    ) {
        self.finish_io(clock, outcome, ctx);
        ctx.close_stage(self, PipelineStage::Account, clock.now());
    }

    /// Stage 6 — account: post-I/O state maintenance — staleness
    /// evidence, pacing-frontier reset, user-level view update — then the
    /// policy's post-read hooks in table order, then the exit histogram
    /// and trace.
    fn stage_account(&self, clock: &mut ThreadClock, ctx: &mut ReadCtx, outcome: &ReadOutcome) {
        let runtime = &self.runtime;
        let inner = &runtime.inner;
        let costs = &inner.os.config().costs;

        // Staleness detection: more misses than the view predicted means
        // the OS evicted pages behind our back. Accumulate evidence and
        // resynchronize by dropping the view — subsequent prefetch checks
        // fall through to the cheap `readahead_info` fast path, which
        // re-imports the authoritative bitmap.
        if inner.policy.features.visibility && !ctx.is_write {
            let expected_miss = ctx.pages - ctx.claimed;
            if outcome.miss_pages > expected_miss {
                let unexpected = outcome.miss_pages - expected_miss;
                inner.stats.stale_pages_observed.add(unexpected);
                let total = self
                    .file
                    .stale_pages
                    .fetch_add(unexpected, Ordering::Relaxed)
                    + unexpected;
                if total >= STALE_RESYNC_PAGES {
                    inner.stats.stale_resyncs.incr();
                    self.file.stale_pages.store(0, Ordering::Relaxed);
                    self.file.tree.clear(clock, costs, runtime.scope());
                }
            }
        }

        // A miss inside the frontier-claimed region means the claim is
        // stale (evicted or never actually covered): reset the pacing
        // frontier so prefetching re-engages from here.
        if outcome.miss_pages > 0 {
            if ctx.p1 <= self.fwd_frontier.load(Ordering::Relaxed) {
                self.fwd_frontier.store(ctx.p1, Ordering::Relaxed);
            }
            if ctx.p0 >= self.back_frontier.load(Ordering::Relaxed) {
                self.back_frontier.store(ctx.p0, Ordering::Relaxed);
            }
        }

        // Update the user-level view: these pages are now cached.
        if inner.policy.features.visibility && ctx.pages > 0 {
            self.file
                .tree
                .mark_cached(clock, costs, runtime.scope(), ctx.p0, ctx.p1);
        }
        self.file
            .last_access_ns
            .store(clock.now(), Ordering::Relaxed);

        // Ring speculation: pre-issue the predicted next demand read now
        // that this access's accounting is settled. The tenant arbiter
        // gets first refusal — speculation is the cheapest thing to shed
        // under pressure, so any rung below `Full` drops it here.
        if let Some((start, end)) = ctx.spec_target.take() {
            if !inner.degraded.load(Ordering::Relaxed)
                && self
                    .runtime
                    .spec_admitted(&self.file, end - start, clock.now())
            {
                self.maybe_issue_spec(clock, start, end);
            }
        }

        for hook in &inner.policy.post_read {
            match hook {
                PostReadHook::FetchAllMonitor => self.hook_fetchall_monitor(clock, ctx),
                PostReadHook::FincorePoll => self.hook_fincore_poll(clock, ctx),
                PostReadHook::MemoryWatcher => runtime.maybe_evict(clock, self.file.ino),
            }
        }

        // Engines that learn from prefetch quality see the per-file
        // timely/late/wasted delta here (no-op for the strided engine, no
        // virtual time charged either way).
        if !ctx.is_write {
            self.maybe_feed_quality();
        }

        self.finish_io(clock, outcome, ctx);
        ctx.close_stage(self, PipelineStage::Account, clock.now());
    }

    /// FetchAll monitoring hook: periodically re-prefetch missing blocks,
    /// walking the file circularly. The policy assumes data fits in
    /// memory (Table 2); when it does not, rounds are capped and backed
    /// off so the refetch churn degrades toward the baselines rather
    /// than collapsing below them (Figure 7c's low-memory shape).
    fn hook_fetchall_monitor(&self, clock: &mut ThreadClock, ctx: &ReadCtx) {
        if ctx.is_write {
            return;
        }
        let runtime = &self.runtime;
        let inner = &runtime.inner;
        let n = self
            .file
            .reads_since_refetch
            .fetch_add(1, Ordering::Relaxed)
            + 1;
        let file_pages = inner.os.fs().size(self.file.ino).div_ceil(PAGE_SIZE);
        let budget = inner.os.mem().budget();
        let over_memory = file_pages > budget;
        let interval = if over_memory {
            FETCHALL_REFRESH_READS * 16
        } else {
            FETCHALL_REFRESH_READS
        };
        if n.is_multiple_of(interval) && file_pages > 0 {
            let round = if over_memory {
                (budget / 4).max(1)
            } else {
                file_pages
            };
            let start = self.file.refetch_cursor.load(Ordering::Relaxed) % file_pages;
            let reached = runtime.prefetch_pages(
                clock,
                &self.file,
                start,
                round.min(file_pages - start),
                false,
            );
            self.file.refetch_cursor.store(
                if reached >= file_pages { 0 } else { reached },
                Ordering::Relaxed,
            );
        }
    }

    /// FincoreApp strawman hook: periodic fincore poll + blind readahead.
    fn hook_fincore_poll(&self, clock: &mut ThreadClock, ctx: &ReadCtx) {
        let inner = &self.runtime.inner;
        let n = self.file.reads_since_poll.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(inner.config.fincore_poll_interval) {
            inner.stats.fincore_polls.incr();
            let runtime2 = self.runtime.clone();
            let fd = self.file.prefetch_fd;
            let next = ctx.p1 * PAGE_SIZE;
            let syscall_ns = inner.os.config().costs.syscall_ns;
            inner
                .workers
                .dispatch(clock.now(), syscall_ns, move |wclock| {
                    let os = runtime2.os();
                    os.fincore(wclock, fd);
                    os.readahead(wclock, fd, next, 1 << 20);
                });
        }
    }

    /// Error exit hook for the fallible fill: counts the surfaced error
    /// and emits the `read-error` trace event. Generic over the error so
    /// the infallible instantiation compiles it away.
    fn note_read_error<E>(&self, clock: &mut ThreadClock, err: E, ctx: &ReadCtx) -> E {
        let inner = &self.runtime.inner;
        inner.stats.read_errors.incr();
        if ctx.spans {
            crate::span::abort();
        }
        if ctx.tracing {
            inner.trace.emit(
                clock.now(),
                TraceEventKind::ReadError {
                    ino: self.file.ino,
                    start_page: ctx.p0,
                    pages: ctx.pages,
                },
            );
        }
        err
    }

    /// Shared exit hook: records the end-to-end latency into the
    /// outcome-classed histogram and emits the read/write-exit trace
    /// event.
    fn finish_io(&self, clock: &mut ThreadClock, outcome: &ReadOutcome, ctx: &ReadCtx) {
        let inner = &self.runtime.inner;
        let latency_ns = clock.now().saturating_sub(ctx.entry_ns);
        if ctx.is_write {
            inner.metrics.write_ns.record(latency_ns);
            if ctx.tracing {
                inner.trace.emit(
                    clock.now(),
                    TraceEventKind::WriteExit {
                        ino: self.file.ino,
                        start_page: ctx.p0,
                        pages: ctx.pages,
                        latency_ns,
                    },
                );
            }
        } else {
            let class = ReadClass::of(outcome);
            inner.metrics.read_hist(class).record(latency_ns);
            if ctx.spans {
                // Close the frame here, where the class is known; the
                // caller's Account close_stage then no-ops on the spent
                // frame. The clock does not advance between the two, so
                // the critical-path buckets still sum to `latency_ns`.
                if let Some(exemplar) = crate::span::finish(
                    clock.now(),
                    PipelineStage::Account,
                    self.runtime.registry_wait_now(),
                    class,
                ) {
                    inner.spans.complete(exemplar);
                }
            }
            if ctx.tracing {
                inner.trace.emit(
                    clock.now(),
                    TraceEventKind::ReadExit {
                        ino: self.file.ino,
                        start_page: ctx.p0,
                        pages: ctx.pages,
                        class,
                        latency_ns,
                    },
                );
            }
        }
    }

    /// Consumption-paced prefetch issuing (the user-space async marker).
    ///
    /// The descriptor keeps a *frontier* (how far prefetch has reached in
    /// the stream's direction) and a *window*. A new request is issued
    /// when the read position crosses into the trailing half of the
    /// window before the frontier; each issue may double the window, up
    /// to the configured and memory-budget limits. A random-classified
    /// stream collapses the window and frontier.
    pub(crate) fn paced_prefetch(
        &self,
        clock: &mut ThreadClock,
        pred: Prediction,
        p0: u64,
        p1: u64,
    ) {
        use crate::predictor::Direction;
        let runtime = &self.runtime;
        let inner = &runtime.inner;

        if pred.prefetch_pages == 0 {
            // Random stream: collapse pacing state.
            self.window_pages.store(0, Ordering::Relaxed);
            self.fwd_frontier.store(p1, Ordering::Relaxed);
            self.back_frontier.store(p0, Ordering::Relaxed);
            return;
        }

        let max_pages = inner.config.max_prefetch_pages;
        let window = self.window_pages.load(Ordering::Relaxed);
        match pred.direction {
            Direction::Forward => {
                let frontier = self.fwd_frontier.load(Ordering::Relaxed);
                // Any run break invalidates the frontier: speculation from
                // the previous position says nothing about the new one.
                let frontier = if pred.jumped || frontier < p1 {
                    p1
                } else {
                    frontier
                };
                let marker = frontier.saturating_sub(window / 2);
                if p1 < marker {
                    return; // plenty prefetched ahead already
                }
                let next_window = if pred.aggressive {
                    (window * 2).clamp(pred.prefetch_pages, max_pages)
                } else {
                    pred.prefetch_pages.min(max_pages)
                };
                let target = p1 + next_window;
                let start = frontier.max(p1);
                if target > start {
                    let reached =
                        runtime.prefetch_pages(clock, &self.file, start, target - start, true);
                    self.fwd_frontier.store(reached.max(p1), Ordering::Relaxed);
                    self.window_pages.store(next_window, Ordering::Relaxed);
                }
            }
            Direction::Backward => {
                let frontier = self.back_frontier.load(Ordering::Relaxed);
                let frontier = if pred.jumped || frontier > p0 {
                    p0
                } else {
                    frontier
                };
                let marker = frontier + window / 2;
                if p0 > marker {
                    return;
                }
                let next_window = if pred.aggressive {
                    (window * 2).clamp(pred.prefetch_pages, max_pages)
                } else {
                    pred.prefetch_pages.min(max_pages)
                };
                let target = p0.saturating_sub(next_window);
                let end = frontier.min(p0);
                if end > target {
                    // Backward prefetch is clamped from the front; treat a
                    // partial schedule as full coverage of the tail.
                    runtime.prefetch_pages(clock, &self.file, target, end - target, true);
                    self.back_frontier.store(target, Ordering::Relaxed);
                    self.window_pages.store(next_window, Ordering::Relaxed);
                }
            }
        }
    }
}
