//! End-to-end behaviour of the CROSS-LIB runtime in every mode.

use crossprefetch::{Mode, Runtime, RuntimeConfig};
use simos::{Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig, PAGE_SIZE};
use std::sync::Arc;

fn boot(memory_mb: u64) -> Arc<Os> {
    Os::new(
        OsConfig::with_memory_mb(memory_mb),
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    )
}

fn runtime(mode: Mode, memory_mb: u64) -> Runtime {
    Runtime::with_mode(boot(memory_mb), mode)
}

#[test]
fn predict_mode_prefetches_sequential_stream() {
    let rt = runtime(Mode::Predict, 512);
    let mut clock = rt.new_clock();
    let file = rt.create_sized(&mut clock, "/seq", 64 << 20).unwrap();
    let chunk = 16 * 1024u64;
    let mut miss = 0u64;
    let mut total = 0u64;
    for i in 0..1024u64 {
        let outcome = file.read_charge(&mut clock, i * chunk, chunk);
        miss += outcome.miss_pages;
        total += outcome.pages;
    }
    let miss_rate = miss as f64 / total as f64;
    assert!(miss_rate < 0.25, "predict mode miss rate {miss_rate}");
    assert!(rt.stats().pages_initiated.get() > 0);
}

#[test]
fn predict_opt_issues_fewer_larger_calls_than_predict() {
    let scan = |mode: Mode| {
        let rt = runtime(mode, 1024);
        let mut clock = rt.new_clock();
        let file = rt.create_sized(&mut clock, "/seq", 128 << 20).unwrap();
        let chunk = 64 * 1024u64;
        for i in 0..2048u64 {
            file.read_charge(&mut clock, i * chunk, chunk);
        }
        (
            rt.os().stats().ra_info_calls.get(),
            clock.now(),
            rt.os().hit_ratio(),
        )
    };
    let (calls_predict, time_predict, _) = scan(Mode::Predict);
    let (calls_opt, time_opt, hit_opt) = scan(Mode::PredictOpt);
    assert!(
        calls_opt < calls_predict,
        "opt should batch: {calls_opt} vs {calls_predict} calls"
    );
    // Single-threaded on a dedicated device both modes approach device
    // bandwidth, so opt only needs to be competitive here; its win shows
    // under contention (Figure 5/10 benches).
    assert!(
        time_opt as f64 <= time_predict as f64 * 1.10,
        "opt should be competitive: {time_opt} vs {time_predict}"
    );
    assert!(hit_opt > 0.7, "opt sequential hit ratio {hit_opt}");
}

#[test]
fn random_access_stops_prefetching() {
    let rt = runtime(Mode::PredictOpt, 256);
    let mut clock = rt.new_clock();
    let file = rt.create_sized(&mut clock, "/rand", 256 << 20).unwrap();
    // Warm the predictor down with scattered single-page reads.
    for i in 0..200u64 {
        let offset = ((i * 977 + 13) % 60000) * PAGE_SIZE;
        file.read_charge(&mut clock, offset, 4096);
    }
    let initiated_mid = rt.stats().pages_initiated.get();
    for i in 0..200u64 {
        let offset = ((i * 1973 + 7) % 60000) * PAGE_SIZE;
        file.read_charge(&mut clock, offset, 4096);
    }
    let initiated_after = rt.stats().pages_initiated.get();
    // Prefetching must flatline once the file is classified random.
    let late_growth = initiated_after - initiated_mid;
    assert!(
        late_growth < 500,
        "random stream should barely prefetch, grew {late_growth} pages"
    );
}

#[test]
fn visibility_skips_redundant_prefetch_calls() {
    let rt = runtime(Mode::PredictOpt, 512);
    let mut clock = rt.new_clock();
    let file = rt.create_sized(&mut clock, "/f", 32 << 20).unwrap();
    // First pass warms the cache and the user bitmap.
    let chunk = 64 * 1024u64;
    for i in 0..512u64 {
        file.read_charge(&mut clock, i * chunk, chunk);
    }
    // Second pass over the same data: everything is cached, so the
    // runtime should skip prefetch syscalls.
    for i in 0..512u64 {
        file.read_charge(&mut clock, i * chunk, chunk);
    }
    assert!(
        rt.stats().prefetches_skipped.get() > 0,
        "cache visibility must suppress redundant prefetches"
    );
}

#[test]
fn fetchall_loads_whole_file_at_open() {
    let rt = runtime(Mode::FetchAllOpt, 512);
    let mut clock = rt.new_clock();
    let file = rt.create_sized(&mut clock, "/db", 16 << 20).unwrap();
    // Open alone schedules the entire file.
    let resident = rt.os().cache(file.ino()).state.read().resident();
    assert_eq!(resident, (16 << 20) / PAGE_SIZE);
}

#[test]
fn fetchall_overruns_memory_budget() {
    // Memory-insensitive by design: a file larger than memory pollutes.
    let rt = runtime(Mode::FetchAllOpt, 16);
    let mut clock = rt.new_clock();
    rt.create_sized(&mut clock, "/huge", 64 << 20).unwrap();
    assert!(
        rt.os().mem().evicted.get() > 0,
        "fetchall must thrash reclaim"
    );
}

#[test]
fn aggressive_eviction_keeps_free_memory() {
    // Short idle horizon so the watcher may evict within this small run.
    let mut config = RuntimeConfig::new(Mode::PredictOpt);
    config.evict_min_idle_ns = simclock::NS_PER_MS;
    let rt = Runtime::new(boot(32), config);
    let mut clock = rt.new_clock();
    // Several files, streamed one after another: old ones must be evicted
    // by the runtime's LRU-of-files policy.
    for f in 0..6 {
        let path = format!("/f{f}");
        let file = rt.create_sized(&mut clock, &path, 16 << 20).unwrap();
        let chunk = 64 * 1024u64;
        for i in 0..256u64 {
            file.read_charge(&mut clock, i * chunk, chunk);
        }
    }
    assert!(rt.stats().files_evicted.get() > 0);
    let mem = rt.os().mem();
    assert!(mem.resident() <= mem.budget());
}

#[test]
fn passthrough_modes_touch_no_runtime_machinery() {
    for mode in [Mode::AppOnly, Mode::OsOnly] {
        let rt = runtime(mode, 128);
        let mut clock = rt.new_clock();
        let file = rt.create_sized(&mut clock, "/p", 4 << 20).unwrap();
        for i in 0..64u64 {
            file.read_charge(&mut clock, i * 16_384, 16_384);
        }
        assert_eq!(rt.stats().prefetches_enqueued.get(), 0, "{mode:?}");
        assert_eq!(rt.os().stats().ra_info_calls.get(), 0, "{mode:?}");
    }
}

#[test]
fn osonly_prefetches_apponly_random_does_not() {
    // OSonly: heuristic readahead fires on sequential streams.
    let rt = runtime(Mode::OsOnly, 256);
    let mut clock = rt.new_clock();
    let file = rt.create_sized(&mut clock, "/os", 16 << 20).unwrap();
    for i in 0..256u64 {
        file.read_charge(&mut clock, i * 16_384, 16_384);
    }
    assert!(rt.os().stats().prefetched_pages.get() > 0);

    // APPonly with fadvise(RANDOM): nothing prefetches.
    let rt2 = runtime(Mode::AppOnly, 256);
    let mut clock2 = rt2.new_clock();
    let file2 = rt2.create_sized(&mut clock2, "/app", 16 << 20).unwrap();
    file2.advise(&mut clock2, simos::Advice::Random, 0, 0);
    for i in 0..256u64 {
        file2.read_charge(&mut clock2, i * 16_384, 16_384);
    }
    assert_eq!(rt2.os().stats().prefetched_pages.get(), 0);
}

#[test]
fn fincore_mode_polls_and_pays_lock_costs() {
    let rt = runtime(Mode::FincoreApp, 256);
    let mut clock = rt.new_clock();
    let file = rt.create_sized(&mut clock, "/fc", 64 << 20).unwrap();
    for i in 0..256u64 {
        file.read_charge(&mut clock, i * 16_384, 16_384);
    }
    assert!(rt.stats().fincore_polls.get() > 0);
    assert!(rt.os().stats().fincore_calls.get() > 0);
}

#[test]
fn whole_file_lock_contends_at_saturation_per_node_does_not() {
    // The deterministic mechanism behind the Table 5 "+range tree" stage
    // and Figure 6: when concurrent threads update the user-level cache
    // view back-to-back (colliding virtual timestamps), one whole-file
    // bitmap lock serializes them while per-node locks on disjoint ranges
    // do not. (The end-to-end throughput ladder is regenerated by
    // `cargo bench -p cp-bench --bench tab05_breakdown`.)
    use crossprefetch::{LockScope, RangeTree};
    use simclock::{CostModel, GlobalClock, ThreadClock};

    let costs = CostModel::default();
    let run = |scope_kind: LockScope| {
        let tree = std::sync::Arc::new(RangeTree::new());
        crossbeam::scope(|scope| {
            for t in 0..8u64 {
                let tree = std::sync::Arc::clone(&tree);
                let costs = costs.clone();
                scope.spawn(move |_| {
                    // All threads issue updates at identical virtual
                    // stamps — the saturation regime.
                    let mut clock = ThreadClock::new(std::sync::Arc::new(GlobalClock::new()));
                    for i in 0..200u64 {
                        let base = t * 4096 + i * 8;
                        tree.mark_cached(&mut clock, &costs, scope_kind, base, base + 8);
                    }
                });
            }
        })
        .unwrap();
        tree.lock_wait_ns()
    };

    let whole_file = run(LockScope::WholeFile);
    let per_node = run(LockScope::PerNode);
    assert!(
        whole_file > 10 * per_node.max(1),
        "whole-file wait {whole_file}ns must dwarf per-node {per_node}ns"
    );
}

#[test]
fn content_round_trips_through_the_shim() {
    let rt = runtime(Mode::PredictOpt, 128);
    let mut clock = rt.new_clock();
    let file = rt.create(&mut clock, "/doc").unwrap();
    let data: Vec<u8> = (0..50_000u32).map(|i| (i % 241) as u8).collect();
    file.write(&mut clock, 1234, &data);
    let back = file.read(&mut clock, 1234, data.len() as u64);
    assert_eq!(back, data);
}

#[test]
fn mmap_predict_mode_prefetches() {
    let rt = runtime(Mode::PredictOpt, 512);
    let mut clock = rt.new_clock();
    let file = rt.create_sized(&mut clock, "/mm", 64 << 20).unwrap();
    let mut major = 0u64;
    for i in 0..512u64 {
        let outcome = file.mmap_read(&mut clock, i * 64 * 1024, 64 * 1024);
        major += outcome.major;
    }
    let total_pages = 512 * 16;
    assert!(
        (major as f64 / total_pages as f64) < 0.4,
        "mmap sequential mostly prefetched, major rate {}",
        major as f64 / total_pages as f64
    );
}

#[test]
fn shared_file_handles_share_cache_view() {
    let rt = runtime(Mode::PredictOpt, 512);
    let mut clock = rt.new_clock();
    rt.create_sized(&mut clock, "/shared", 8 << 20).unwrap();
    let h1 = rt.open(&mut clock, "/shared").unwrap();
    let h2 = rt.open(&mut clock, "/shared").unwrap();
    // h1 streams the first half; h2's reads of the same half hit.
    for i in 0..256u64 {
        h1.read_charge(&mut clock, i * 16_384, 16_384);
    }
    let outcome = h2.read_charge(&mut clock, 0, 1 << 20);
    assert_eq!(outcome.miss_pages, 0, "second handle must see shared cache");
}
