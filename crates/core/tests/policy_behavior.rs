//! Policy-level tests for the memory watcher, worker pool integration,
//! staleness resynchronization, and pacing frontiers.

use crossprefetch::{Mode, Runtime, RuntimeConfig};
use simos::{Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig, PAGE_SIZE};
use std::sync::Arc;

fn boot(memory_mb: u64) -> Arc<Os> {
    Os::new(
        OsConfig::with_memory_mb(memory_mb),
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    )
}

#[test]
fn stale_view_resyncs_after_external_eviction() {
    let rt = Runtime::with_mode(boot(256), Mode::PredictOpt);
    let mut clock = rt.new_clock();
    let file = rt.create_sized(&mut clock, "/stale", 16 << 20).unwrap();
    // Warm everything; the user view marks it cached.
    for i in 0..256u64 {
        file.read_charge(&mut clock, i * 64 * 1024, 64 * 1024);
    }
    // The OS drops its cache behind the runtime's back.
    rt.os().drop_caches(&mut clock);
    // Reads now miss; after enough unexpected misses the view resyncs and
    // prefetching resumes (initiated pages grow again).
    let before = rt.stats().pages_initiated.get();
    for i in 0..256u64 {
        file.read_charge(&mut clock, i * 64 * 1024, 64 * 1024);
    }
    assert!(
        rt.stats().pages_initiated.get() > before,
        "prefetching must resume after staleness resync"
    );
}

#[test]
fn aggressive_growth_pauses_under_reclaim_pressure() {
    // A dataset far larger than memory keeps reclaim running; aggressive
    // windows must stay bounded so device traffic does not balloon.
    let rt = Runtime::with_mode(boot(16), Mode::PredictOpt);
    let mut clock = rt.new_clock();
    let file = rt.create_sized(&mut clock, "/pressure", 128 << 20).unwrap();
    for i in 0..1024u64 {
        file.read_charge(&mut clock, i * 64 * 1024, 64 * 1024);
    }
    let touched = 1024 * 64 * 1024u64;
    let device_read = rt.os().device().stats().read_bytes.get();
    assert!(
        device_read < touched * 2,
        "device read {device_read} must stay within 2x of touched {touched}"
    );
    assert!(rt.os().mem().resident() <= rt.os().mem().budget());
}

#[test]
fn backward_stream_prefetches_behind() {
    let rt = Runtime::with_mode(boot(256), Mode::PredictOpt);
    let mut clock = rt.new_clock();
    let file = rt.create_sized(&mut clock, "/rev", 32 << 20).unwrap();
    let total_pages = (32u64 << 20) / PAGE_SIZE;
    let mut miss = 0u64;
    let mut pages = 0u64;
    for i in (0..total_pages / 4).rev() {
        let outcome = file.read_charge(&mut clock, i * 4 * PAGE_SIZE, 4 * PAGE_SIZE);
        miss += outcome.miss_pages;
        pages += outcome.pages;
    }
    let miss_rate = miss as f64 / pages as f64;
    assert!(
        miss_rate < 0.2,
        "backward stream should be mostly prefetched, miss {miss_rate:.2}"
    );
}

#[test]
fn worker_count_is_respected() {
    for workers in [1usize, 4] {
        let mut config = RuntimeConfig::new(Mode::PredictOpt);
        config.workers = workers;
        let rt = Runtime::new(boot(128), config);
        assert_eq!(rt.workers().len(), workers);
        let mut clock = rt.new_clock();
        let file = rt.create_sized(&mut clock, "/w", 8 << 20).unwrap();
        for i in 0..128u64 {
            file.read_charge(&mut clock, i * 16 * 1024, 16 * 1024);
        }
        assert!(rt.workers().jobs() > 0);
    }
}

#[test]
fn eviction_respects_min_idle_protection() {
    let mut config = RuntimeConfig::new(Mode::PredictOpt);
    config.evict_min_idle_ns = u64::MAX / 2; // nothing is ever idle enough
    let rt = Runtime::new(boot(16), config);
    let mut clock = rt.new_clock();
    for f in 0..4 {
        let file = rt
            .create_sized(&mut clock, &format!("/f{f}"), 16 << 20)
            .unwrap();
        for i in 0..128u64 {
            file.read_charge(&mut clock, i * 64 * 1024, 64 * 1024);
        }
    }
    assert_eq!(
        rt.stats().files_evicted.get(),
        0,
        "min-idle protection must suppress lib-level eviction"
    );
    // The OS reclaim still bounds memory.
    assert!(rt.os().mem().resident() <= rt.os().mem().budget());
}

#[test]
fn drop_cache_view_resets_prefetch_dedup() {
    let rt = Runtime::with_mode(boot(256), Mode::FetchAllOpt);
    let mut clock = rt.new_clock();
    let file = rt.create_sized(&mut clock, "/fa", 4 << 20).unwrap();
    let first = rt.stats().pages_initiated.get();
    assert_eq!(first, (4 << 20) / PAGE_SIZE, "fetchall loads at open");
    rt.os().drop_caches(&mut clock);
    rt.drop_cache_view(&mut clock);
    // Re-opening schedules the whole file again.
    let again = rt.open(&mut clock, "/fa").unwrap();
    let _ = again;
    assert_eq!(
        rt.stats().pages_initiated.get(),
        2 * first,
        "fetchall reschedules after a view drop"
    );
    let _ = file;
}

#[test]
fn predictors_are_per_descriptor() {
    // Two descriptors on one file, one sequential and one random: the
    // sequential one must keep prefetching (its predictor is private).
    let rt = Runtime::with_mode(boot(512), Mode::PredictOpt);
    let mut clock = rt.new_clock();
    rt.create_sized(&mut clock, "/mixed", 64 << 20).unwrap();
    let seq = rt.open(&mut clock, "/mixed").unwrap();
    let rand = rt.open(&mut clock, "/mixed").unwrap();

    let mut seq_miss = 0u64;
    let mut seq_pages = 0u64;
    for i in 0..512u64 {
        // Interleave: sequential stream on `seq`, scattered reads on `rand`.
        let outcome = seq.read_charge(&mut clock, i * 16 * 1024, 16 * 1024);
        seq_miss += outcome.miss_pages;
        seq_pages += outcome.pages;
        let scatter = ((i * 7919 + 13) % 12_000) * PAGE_SIZE + (32 << 20);
        rand.read_charge(&mut clock, scatter, 4096);
    }
    let rate = seq_miss as f64 / seq_pages as f64;
    assert!(
        rate < 0.25,
        "sequential descriptor stays prefetched despite the random sibling, miss {rate:.2}"
    );
}
