//! Fault injection and graceful degradation: the error model end to end.
//!
//! Covers the degradation ladder (§4.4's freshness/robustness challenges
//! under an adversarial device): transient-EIO retry and give-up on the
//! worker path, the permanent downgrade to blind `readahead(2)` on a stock
//! kernel, stale-view resynchronisation after OS reclaim, the memory
//! watcher's LRU-of-files ordering, and the pay-nothing-when-disabled
//! guarantee of an all-zero fault plan.

use crossprefetch::{
    Device, DeviceConfig, FaultPlan, FileSystem, FsKind, InodeId, Mode, Os, OsConfig, Runtime,
    RuntimeConfig, RuntimeReport, TraceEventKind,
};
use std::sync::Arc;

fn boot(memory_mb: u64) -> Arc<Os> {
    Os::new(
        OsConfig::with_memory_mb(memory_mb),
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    )
}

fn boot_with_plan(memory_mb: u64, plan: FaultPlan) -> Arc<Os> {
    Os::new(
        OsConfig::with_memory_mb(memory_mb),
        Device::with_fault_plan(DeviceConfig::local_nvme(), plan),
        FileSystem::new(FsKind::Ext4Like),
    )
}

/// Streams `total` bytes sequentially in `chunk`-byte reads, returning the
/// bytes delivered.
fn stream(
    file: &crossprefetch::CpFile,
    clock: &mut simclock::ThreadClock,
    total: u64,
    chunk: u64,
) -> u64 {
    let mut bytes = 0;
    let mut offset = 0;
    while offset < total {
        bytes += file.read_charge(clock, offset, chunk).bytes;
        offset += chunk;
    }
    bytes
}

#[test]
fn stale_view_resyncs_after_os_reclaims_behind_the_runtime() {
    let rt = Runtime::with_mode(boot(512), Mode::Predict);
    let mut clock = rt.new_clock();
    let size = 4 << 20; // 1024 pages
    let file = rt.create_sized(&mut clock, "/stale", size).unwrap();
    // First pass marks the whole file cached in the user-level view.
    stream(&file, &mut clock, size, 16 * 1024);
    assert_eq!(rt.stats().stale_pages_observed.get(), 0);

    // The OS drops its cache behind the runtime's back (the user-level
    // bitmap import is now entirely stale).
    let mut oc = rt.os().new_clock();
    rt.os().drop_caches(&mut oc);

    // Second pass: the view claims every page cached, the reads all miss.
    // The watchdog accumulates the unexpected misses and resyncs by
    // dropping the tree once enough evidence piles up.
    let bytes = stream(&file, &mut clock, size, 16 * 1024);
    assert_eq!(bytes, size, "reads must survive a stale view");
    assert!(
        rt.stats().stale_pages_observed.get() >= 128,
        "stale pages observed: {}",
        rt.stats().stale_pages_observed.get()
    );
    assert!(
        rt.stats().stale_resyncs.get() >= 1,
        "the watchdog must resync at least once"
    );
    // Telemetry surfaces the resync.
    let report = RuntimeReport::collect(&rt);
    assert_eq!(report.stale_resyncs, rt.stats().stale_resyncs.get());
    assert!(report.to_json().contains("\"stale_resyncs\":"));
}

#[test]
fn memory_watcher_evicts_oldest_idle_file_and_stops_at_target() {
    // 32 MiB budget; A and B (8 MiB each) go idle, then streaming C
    // (14 MiB) pushes free memory below the 10% trigger. Evicting A alone
    // restores >= 25% free (the target), so B must survive.
    let mut config = RuntimeConfig::new(Mode::PredictOpt);
    config.evict_min_idle_ns = simclock::NS_PER_US;
    config.evict_scan_interval_ns = simclock::NS_PER_US;
    let rt = Runtime::new(boot(32), config);
    rt.trace().set_enabled(true);
    let mut clock = rt.new_clock();

    let a = rt.create_sized(&mut clock, "/a", 8 << 20).unwrap();
    stream(&a, &mut clock, 8 << 20, 64 * 1024);
    let b = rt.create_sized(&mut clock, "/b", 8 << 20).unwrap();
    stream(&b, &mut clock, 8 << 20, 64 * 1024);
    let c = rt.create_sized(&mut clock, "/c", 14 << 20).unwrap();
    stream(&c, &mut clock, 14 << 20, 64 * 1024);

    assert!(
        rt.stats().files_evicted.get() >= 1,
        "pressure must trigger the watcher"
    );
    let evicted: Vec<InodeId> = rt
        .trace()
        .snapshot()
        .iter()
        .filter_map(|e| match e.kind {
            TraceEventKind::LibEvict { ino, .. } => Some(ino),
            _ => None,
        })
        .collect();
    assert_eq!(
        evicted.first(),
        Some(&a.ino()),
        "LRU-of-files must evict the oldest idle file first"
    );
    // Stop-at-target: one eviction restored the target, so B keeps its
    // pages and is never evicted.
    assert!(
        !evicted.contains(&b.ino()),
        "watcher must stop at evict_target instead of draining every file"
    );
    assert!(
        rt.os().cache(b.ino()).state.read().resident() > 0,
        "B must stay resident"
    );
}

#[test]
fn transient_prefetch_faults_retry_then_recover() {
    let plan = FaultPlan::seeded(7).with_prefetch_eio(0.2);
    let rt = Runtime::with_mode(boot_with_plan(512, plan), Mode::PredictOpt);
    let mut clock = rt.new_clock();
    let size = 32 << 20;
    let file = rt.create_sized(&mut clock, "/retry", size).unwrap();
    let bytes = stream(&file, &mut clock, size, 64 * 1024);
    assert_eq!(bytes, size, "faulty prefetch must never corrupt reads");
    assert!(
        rt.os().device().stats().injected_read_faults.get() > 0,
        "the plan must actually inject faults"
    );
    assert!(
        rt.stats().prefetch_retries.get() > 0,
        "transient EIOs must be retried"
    );
    // At 20% per-attempt failure and 4 attempts, nearly every chunk lands.
    assert!(
        rt.stats().pages_initiated.get() > 0,
        "retried prefetches must eventually initiate pages"
    );
    let report = RuntimeReport::collect(&rt);
    assert_eq!(report.prefetch_retries, rt.stats().prefetch_retries.get());
    assert!(report.device_read_faults > 0);
}

#[test]
fn exhausted_retries_abandon_the_range_but_reads_survive() {
    let plan = FaultPlan::seeded(3).with_prefetch_eio(1.0);
    let rt = Runtime::with_mode(boot_with_plan(256, plan), Mode::PredictOpt);
    rt.trace().set_enabled(true);
    let mut clock = rt.new_clock();
    let size = 8 << 20;
    let file = rt.create_sized(&mut clock, "/doomed", size).unwrap();
    let bytes = stream(&file, &mut clock, size, 64 * 1024);
    assert_eq!(
        bytes, size,
        "demand reads must survive a dead prefetch path"
    );
    assert!(
        rt.stats().prefetch_give_ups.get() > 0,
        "every prefetch must exhaust its retries"
    );
    assert!(rt.stats().pages_abandoned.get() > 0);
    // All-or-nothing injection: nothing was ever initiated, and the
    // user-level view was never marked by a failed prefetch — the misses
    // all resolve as honest demand fills.
    assert_eq!(rt.stats().pages_initiated.get(), 0);
    assert_eq!(rt.os().stats().prefetched_pages.get(), 0);
    assert_eq!(
        rt.os().stats().miss_pages.get(),
        size / crossprefetch::PAGE_SIZE,
        "every page must be demand-fetched exactly once"
    );
    let abandoned = rt
        .trace()
        .snapshot()
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::PrefetchAbandoned { .. }))
        .count();
    assert!(abandoned > 0, "abandonment must be traced");
}

#[test]
fn unsupported_kernel_downgrades_to_blind_readahead() {
    let run = |supported: bool, mode: Mode| {
        let mut os_config = OsConfig::with_memory_mb(512);
        os_config.readahead_info_supported = supported;
        let os = Os::new(
            os_config,
            Device::new(DeviceConfig::local_nvme()),
            FileSystem::new(FsKind::Ext4Like),
        );
        let rt = Runtime::with_mode(os, mode);
        rt.trace().set_enabled(true);
        let mut clock = rt.new_clock();
        let size = 32 << 20;
        let file = rt.create_sized(&mut clock, "/blind", size).unwrap();
        let bytes = stream(&file, &mut clock, size, 16 * 1024);
        assert_eq!(bytes, size);
        rt
    };

    let rt = run(false, Mode::Predict);
    assert!(rt.degraded_to_blind(), "the latch must flip");
    assert!(
        rt.os().stats().ra_info_unsupported.get() >= 1,
        "the rejected probe must be counted"
    );
    assert_eq!(
        rt.os().stats().ra_info_calls.get(),
        0,
        "no readahead_info call may succeed on a stock kernel"
    );
    assert!(
        rt.os().stats().ra_calls.get() > 0,
        "degraded prefetch must fall back to readahead(2)"
    );
    let downgrades = rt
        .trace()
        .snapshot()
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::VisibilityDowngraded { .. }))
        .count();
    assert_eq!(downgrades, 1, "the latch is one-way: one trace event");
    let report = RuntimeReport::collect(&rt);
    assert!(report.degraded_to_blind);
    assert!(report.to_json().contains("\"degraded_to_blind\":true"));

    // Degraded CrossP still prefetches about as well as the OS heuristic:
    // the run completes with a hit ratio in OSonly's neighbourhood.
    let baseline = run(true, Mode::OsOnly);
    let degraded_hits = rt.os().hit_ratio();
    let osonly_hits = baseline.os().hit_ratio();
    assert!(
        (degraded_hits - osonly_hits).abs() < 0.10,
        "degraded hit ratio {degraded_hits:.3} vs OSonly {osonly_hits:.3}"
    );
}

#[test]
fn all_zero_fault_plan_is_bit_identical() {
    let run = |plan: Option<FaultPlan>| {
        let device_config = DeviceConfig::local_nvme();
        let device = match plan {
            Some(plan) => Device::with_fault_plan(device_config, plan),
            None => Device::new(device_config),
        };
        let os = Os::new(
            OsConfig::with_memory_mb(128),
            device,
            FileSystem::new(FsKind::Ext4Like),
        );
        let rt = Runtime::with_mode(os, Mode::PredictOpt);
        let mut clock = rt.new_clock();
        let size = 16 << 20;
        let file = rt.create_sized(&mut clock, "/zero", size).unwrap();
        stream(&file, &mut clock, size, 16 * 1024);
        (clock.now(), RuntimeReport::collect(&rt).to_json())
    };
    let without = run(None);
    let with_zero_plan = run(Some(FaultPlan::seeded(42)));
    assert_eq!(
        without, with_zero_plan,
        "an all-zero plan must not perturb virtual time or telemetry"
    );
}
