//! Workload-suite integration tests: every generator must drive the stack
//! correctly and reproduce its qualitative shape at test scale.

use crossprefetch::{Mode, Runtime};
use simos::{Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig};
use std::sync::Arc;
use workloads::{
    run_filebench, run_micro, run_shared_rw, run_snappy, setup_micro, FilebenchConfig, MicroConfig,
    MicroPattern, Personality, SnappyConfig,
};

fn os(memory_mb: u64) -> Arc<Os> {
    Os::new(
        OsConfig::with_memory_mb(memory_mb),
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    )
}

#[test]
fn micro_results_account_exactly() {
    let rt = Runtime::with_mode(os(64), Mode::OsOnly);
    let cfg = MicroConfig {
        threads: 4,
        data_bytes: 64 << 20,
        io_bytes: 16 * 1024,
        ops_per_thread: 200,
        shared: true,
        pattern: MicroPattern::Sequential,
        seed: 1,
    };
    setup_micro(&rt, &cfg);
    let result = run_micro(&rt, &cfg);
    assert_eq!(result.ops, 4 * 200);
    assert_eq!(result.bytes, 4 * 200 * 16 * 1024);
    assert!(result.elapsed_ns > 0);
    assert!((0.0..=100.0).contains(&result.miss_pct));
}

#[test]
fn shared_rw_write_side_reflects_writer_count() {
    let rt = Runtime::with_mode(os(64), Mode::OsOnly);
    let (writes, reads) = run_shared_rw(&rt, 6, 2, 64 << 20, 160, 9);
    assert_eq!(writes.ops, 2 * 160);
    assert_eq!(reads.ops, 6 * 160);
    assert!(writes.mbps() > 0.0 && reads.mbps() > 0.0);
}

#[test]
fn filebench_videoserver_appends_content() {
    let machine = os(128);
    let cfg = FilebenchConfig {
        personality: Personality::VideoServer,
        instances: 2,
        bytes_per_instance: 16 << 20,
        ops_per_instance: 80,
        mode: Mode::OsOnly,
        seed: 3,
    };
    run_filebench(&machine, &cfg);
    // Appends may have grown some video past its initial size.
    let grown = machine
        .fs()
        .list_prefix("/fb/video0/")
        .iter()
        .any(|p| machine.fs().size(machine.fs().lookup(p).unwrap()) > (16 << 20) / 8);
    let exists = !machine.fs().list_prefix("/fb/video0/").is_empty();
    assert!(exists);
    let _ = grown; // growth is probabilistic; existence is the invariant
}

#[test]
fn snappy_outputs_decompress_to_original_content() {
    let machine = os(64);
    let cfg = SnappyConfig {
        threads: 2,
        files_per_thread: 1,
        file_bytes: 1 << 20,
        mode: Mode::PredictOpt,
        compress_bytes_per_sec: 300e6,
    };
    let result = run_snappy(&machine, &cfg);
    assert!(result.ratio() > 3.0, "log-like input compresses well");

    // Decompress an actual output file and compare with its input.
    let rt = Runtime::with_mode(Arc::clone(&machine), Mode::OsOnly);
    let mut clock = rt.new_clock();
    let input = rt.open(&mut clock, "/snappy/in-0-0").unwrap();
    let output = rt.open(&mut clock, "/snappy/out-0-0.sz").unwrap();
    let original = input.read(&mut clock, 0, 1 << 20);
    let packed = output.read(&mut clock, 0, output.size());
    assert_eq!(workloads::decompress(&packed).unwrap(), original);
}

#[test]
fn micro_shapes_hold_at_test_scale() {
    // The Figure 5 core claim, as a cheap smoke assertion.
    let run = |mode: Mode| {
        let rt = Runtime::with_mode(os(48), mode);
        let cfg = MicroConfig {
            threads: 4,
            data_bytes: 96 << 20,
            io_bytes: 16 * 1024,
            ops_per_thread: 800,
            shared: true,
            pattern: MicroPattern::BatchedRandom { batch: 8 },
            seed: 0x5A,
        };
        setup_micro(&rt, &cfg);
        run_micro(&rt, &cfg)
    };
    let app = run(Mode::AppOnly);
    let crossp = run(Mode::PredictOpt);
    assert!(crossp.mbps() > app.mbps(), "CrossP must beat APPonly");
    assert!(crossp.miss_pct < app.miss_pct);
}

#[test]
fn filebench_all_modes_complete_without_panic() {
    for mode in [
        Mode::AppOnly,
        Mode::OsOnly,
        Mode::Predict,
        Mode::FetchAllOpt,
    ] {
        let machine = os(64);
        let cfg = FilebenchConfig {
            personality: Personality::RandRead,
            instances: 2,
            bytes_per_instance: 8 << 20,
            ops_per_instance: 40,
            mode,
            seed: 4,
        };
        let result = run_filebench(&machine, &cfg);
        assert!(result.bytes > 0, "{mode:?}");
    }
}
