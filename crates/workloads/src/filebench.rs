//! Filebench-style multi-instance macrobenchmarks (Figure 8b).
//!
//! Four personalities, run as N independent "instances" (the paper runs
//! 16) that share one OS and memory budget but own private files and a
//! private CROSS-LIB runtime each — like separate processes linked against
//! the library:
//!
//! * `seqread` — large-file sequential streaming;
//! * `randread` — scattered 8 KiB reads over a large file;
//! * `mongodb` — metadata-intensive: thousands of small files created,
//!   written, fsynced, re-read, and deleted;
//! * `videoserver` — many concurrent 1 MiB-request sequential streams plus
//!   a background writer appending new content.

use std::sync::Arc;

use crossprefetch::{Advice, Mode, Runtime, RuntimeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::Throughput;
use simos::Os;

/// Filebench personality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Personality {
    /// Sequential whole-file streaming.
    SeqRead,
    /// Random 8 KiB reads.
    RandRead,
    /// Metadata-intensive small-file churn.
    MongoDb,
    /// Streaming video server.
    VideoServer,
}

impl Personality {
    /// All four, in the paper's presentation order.
    pub fn all() -> [Personality; 4] {
        [
            Personality::SeqRead,
            Personality::RandRead,
            Personality::MongoDb,
            Personality::VideoServer,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Personality::SeqRead => "seqread",
            Personality::RandRead => "randread",
            Personality::MongoDb => "mongodb",
            Personality::VideoServer => "videoserve",
        }
    }
}

/// Multi-instance run parameters.
#[derive(Debug, Clone)]
pub struct FilebenchConfig {
    /// Personality to run.
    pub personality: Personality,
    /// Concurrent instances (paper: 16).
    pub instances: usize,
    /// Dataset bytes per instance.
    pub bytes_per_instance: u64,
    /// Operations per instance.
    pub ops_per_instance: u64,
    /// Mechanism each instance's runtime uses.
    pub mode: Mode,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FilebenchConfig {
    fn default() -> Self {
        Self {
            personality: Personality::SeqRead,
            instances: 16,
            bytes_per_instance: 64 << 20,
            ops_per_instance: 500,
            mode: Mode::PredictOpt,
            seed: 17,
        }
    }
}

/// Aggregate outcome across instances.
#[derive(Debug, Clone, Copy)]
pub struct FilebenchResult {
    /// Bytes moved across all instances.
    pub bytes: u64,
    /// Operations across all instances.
    pub ops: u64,
    /// Slowest instance's virtual span.
    pub elapsed_ns: u64,
}

impl FilebenchResult {
    /// Aggregate MB/s of virtual time.
    pub fn mbps(&self) -> f64 {
        Throughput::new(self.bytes, self.ops, self.elapsed_ns).mb_per_sec()
    }
}

/// Runs `cfg.instances` instances of the personality on a shared OS.
pub fn run_filebench(os: &Arc<Os>, cfg: &FilebenchConfig) -> FilebenchResult {
    let start = os.global().now();
    let spans: Vec<(u64, u64, u64)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..cfg.instances)
            .map(|inst| {
                let os = Arc::clone(os);
                let cfg = cfg.clone();
                scope.spawn(move |_| {
                    // Each instance links its own CROSS-LIB runtime.
                    let runtime = Runtime::new(Arc::clone(&os), RuntimeConfig::new(cfg.mode));
                    let mut clock =
                        simclock::ThreadClock::starting_at(Arc::clone(os.global()), start);
                    let (ops, bytes) = run_instance(&runtime, &mut clock, inst, &cfg);
                    (ops, bytes, clock.now() - start)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();
    FilebenchResult {
        bytes: spans.iter().map(|s| s.1).sum(),
        ops: spans.iter().map(|s| s.0).sum(),
        elapsed_ns: spans.iter().map(|s| s.2).max().unwrap_or(1).max(1),
    }
}

fn run_instance(
    runtime: &Runtime,
    clock: &mut simclock::ThreadClock,
    inst: usize,
    cfg: &FilebenchConfig,
) -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (inst as u64) << 24);
    match cfg.personality {
        Personality::SeqRead => {
            let path = format!("/fb/seq{inst}");
            runtime
                .os()
                .fs()
                .create_sized(&path, cfg.bytes_per_instance)
                .expect("fresh namespace");
            let file = runtime.open(clock, &path).expect("created above");
            if cfg.mode == Mode::AppOnly {
                file.advise(clock, Advice::Sequential, 0, 0);
            }
            let io = 128 * 1024u64;
            let mut offset = 0u64;
            let mut bytes = 0u64;
            for _ in 0..cfg.ops_per_instance {
                if offset + io > cfg.bytes_per_instance {
                    offset = 0;
                }
                if cfg.mode == Mode::AppOnly && offset.is_multiple_of(4 << 20) {
                    file.readahead(clock, offset, 4 << 20);
                }
                file.read_charge(clock, offset, io);
                offset += io;
                bytes += io;
            }
            (cfg.ops_per_instance, bytes)
        }
        Personality::RandRead => {
            let path = format!("/fb/rand{inst}");
            runtime
                .os()
                .fs()
                .create_sized(&path, cfg.bytes_per_instance)
                .expect("fresh namespace");
            let file = runtime.open(clock, &path).expect("created above");
            if cfg.mode == Mode::AppOnly {
                file.advise(clock, Advice::Random, 0, 0);
            }
            let io = 8 * 1024u64;
            let mut bytes = 0u64;
            // Batched random, like the paper's analysis workloads.
            let mut done = 0u64;
            while done < cfg.ops_per_instance {
                let base = rng.gen_range(0..cfg.bytes_per_instance.saturating_sub(8 * io).max(1));
                let base = base / 4096 * 4096;
                for j in 0..4.min(cfg.ops_per_instance - done) {
                    file.read_charge(clock, base + j * io, io);
                    bytes += io;
                }
                done += 4;
            }
            (cfg.ops_per_instance, bytes)
        }
        Personality::MongoDb => {
            // Thousands of small files: create, write, fsync, read, some
            // deletes. File size 64 KiB.
            let file_bytes = 64 * 1024u64;
            let files = cfg.ops_per_instance;
            let mut bytes = 0u64;
            for i in 0..files {
                let path = format!("/fb/mongo{inst}/{i:05}");
                let file = runtime.create(clock, &path).expect("unique per instance");
                file.write_charge(clock, 0, file_bytes);
                file.fsync(clock);
                file.read_charge(clock, 0, file_bytes);
                bytes += 2 * file_bytes;
                if i % 8 == 0 && i > 0 {
                    let victim = format!("/fb/mongo{inst}/{:05}", i - 8);
                    let _ = runtime.os().unlink(clock, &victim);
                }
            }
            (files, bytes)
        }
        Personality::VideoServer => {
            // A library of "videos"; several streams read sequentially at
            // 1 MiB requests from random starting videos; one appender
            // adds new content periodically.
            let videos = 8u64;
            let video_bytes = cfg.bytes_per_instance / videos;
            let paths: Vec<String> = (0..videos)
                .map(|v| {
                    let path = format!("/fb/video{inst}/{v}");
                    runtime
                        .os()
                        .fs()
                        .create_sized(&path, video_bytes)
                        .expect("fresh namespace");
                    path
                })
                .collect();
            let io = 1 << 20u64;
            let mut bytes = 0u64;
            let mut served = 0u64;
            while served < cfg.ops_per_instance {
                // Pick a video and stream a run of it.
                let video = &paths[rng.gen_range(0..videos) as usize];
                let file = runtime.open(clock, video).expect("created above");
                if cfg.mode == Mode::AppOnly {
                    file.advise(clock, Advice::Sequential, 0, 0);
                }
                let mut offset =
                    rng.gen_range(0..video_bytes.saturating_sub(8 * io).max(1)) / 4096 * 4096;
                for _ in 0..8.min(cfg.ops_per_instance - served) {
                    file.read_charge(clock, offset, io);
                    offset += io;
                    bytes += io;
                    served += 1;
                }
                // Occasional new content appended.
                if rng.gen_bool(0.05) {
                    file.write_charge(clock, video_bytes, 256 * 1024);
                }
            }
            (served, bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::{Device, DeviceConfig, FileSystem, FsKind, OsConfig};

    fn os(memory_mb: u64) -> Arc<Os> {
        Os::new(
            OsConfig::with_memory_mb(memory_mb),
            Device::new(DeviceConfig::local_nvme()),
            FileSystem::new(FsKind::Ext4Like),
        )
    }

    #[test]
    fn all_personalities_complete() {
        for personality in Personality::all() {
            let os = os(128);
            let cfg = FilebenchConfig {
                personality,
                instances: 2,
                bytes_per_instance: 16 << 20,
                ops_per_instance: 60,
                mode: Mode::PredictOpt,
                seed: 5,
            };
            let result = run_filebench(&os, &cfg);
            assert!(result.bytes > 0, "{}", personality.label());
            assert!(result.mbps() > 0.0, "{}", personality.label());
        }
    }

    #[test]
    fn mongodb_churns_the_namespace() {
        let os = os(128);
        let cfg = FilebenchConfig {
            personality: Personality::MongoDb,
            instances: 2,
            bytes_per_instance: 8 << 20,
            ops_per_instance: 64,
            mode: Mode::OsOnly,
            seed: 5,
        };
        run_filebench(&os, &cfg);
        // Files exist but some were deleted.
        let remaining = os.fs().list_prefix("/fb/mongo0/").len();
        assert!(remaining > 0 && remaining < 64);
    }

    #[test]
    fn seqread_crossp_beats_osonly_single_instance() {
        // Single instance => single worker thread => fully deterministic
        // virtual time, immune to host CPU oversubscription. The
        // multi-instance aggregate is exercised by the fig08b bench.
        let run = |mode| {
            let os = os(64);
            let cfg = FilebenchConfig {
                personality: Personality::SeqRead,
                instances: 1,
                bytes_per_instance: 32 << 20,
                ops_per_instance: 600,
                mode,
                seed: 5,
            };
            run_filebench(&os, &cfg).mbps()
        };
        let osonly = run(Mode::OsOnly);
        let crossp = run(Mode::PredictOpt);
        assert!(
            crossp > osonly,
            "seqread: CrossP {crossp:.0} vs OSonly {osonly:.0} MB/s"
        );
    }
}
