//! Fleet: an open-loop multi-tenant arrival workload (millions-of-users
//! shape).
//!
//! Requests arrive on a seeded Poisson process (exponential gaps in
//! virtual time) and are assigned to tenants by a [`Zipfian`] popularity
//! draw over the tenant table — low indices are hot, so a fleet mix puts
//! its noisy best-effort tenants first and its latency-sensitive gold
//! tenant last. Each tenant owns a directory of preallocated files; a
//! request opens (lazily, through [`Runtime::open_for_tenant`]) one of
//! them and issues a short burst of reads, either sequentially (per-file
//! cursor, prefetch-friendly) or at hashed random offsets (wasteful — the
//! pattern the quality-weighted arbiter should throttle first).
//!
//! The driver is open-loop: arrival times come from the seeded process
//! alone, and a request that finds the driver still busy simply starts
//! late — its response time (completion minus *arrival*) then includes
//! the queueing delay, exactly what a saturating fleet does to tail
//! latency. Single-threaded and fully deterministic for a given config,
//! so same-seed runs export byte-identical telemetry.
//!
//! [`FleetConfig::only_tenant`] replays the identical arrival stream but
//! executes only one tenant's requests (every RNG draw still happens, so
//! arrivals and offsets stay aligned). That is the *unloaded baseline*
//! the `fleet_compare` acceptance gate measures p99 bounds against.

use crossprefetch::{QosClass, Runtime, TenantId, TenantSpec};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use simclock::ThreadClock;

use crate::zipf::Zipfian;

/// One tenant of the fleet.
#[derive(Debug, Clone)]
pub struct FleetTenantSpec {
    /// Tenant name (also the telemetry key).
    pub name: String,
    /// Service class fed to the arbiter.
    pub qos: QosClass,
    /// Short sequential bursts from hashed-random start offsets instead
    /// of one long stream. Each burst looks sequential, so the strided
    /// predictor ramps readahead — then the next burst jumps elsewhere
    /// and the overshoot settles as wasted prefetch. Cache-hostile and
    /// prefetch-wasteful: the traffic the arbiter throttles first.
    pub random: bool,
    /// Per-tenant file size, overriding [`FleetConfig::file_bytes`] —
    /// fleet tenants rarely share one dataset shape.
    pub file_bytes: Option<u64>,
}

impl FleetTenantSpec {
    /// Convenience constructor.
    pub fn new(name: &str, qos: QosClass, random: bool) -> Self {
        Self {
            name: name.to_string(),
            qos,
            random,
            file_bytes: None,
        }
    }

    /// Overrides the fleet-wide file size for this tenant.
    #[must_use]
    pub fn with_file_bytes(mut self, bytes: u64) -> Self {
        self.file_bytes = Some(bytes);
        self
    }
}

/// Fleet parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Tenant table, hottest (most requests) first.
    pub tenants: Vec<FleetTenantSpec>,
    /// Files per tenant.
    pub files_per_tenant: u64,
    /// Bytes per file.
    pub file_bytes: u64,
    /// Requests to generate across the whole fleet.
    pub requests: u64,
    /// Mean of the exponential inter-arrival gap, virtual ns.
    pub mean_interarrival_ns: u64,
    /// Reads per request.
    pub reads_per_request: u64,
    /// Bytes per read.
    pub read_bytes: u64,
    /// Zipfian skew of tenant popularity (strictly in `(0, 1)`).
    pub zipf_theta: f64,
    /// Execute only this tenant's requests, keeping every RNG draw of the
    /// full stream (the unloaded-baseline replay).
    pub only_tenant: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            tenants: vec![
                FleetTenantSpec::new("batch-a", QosClass::Bronze, true),
                FleetTenantSpec::new("batch-b", QosClass::Bronze, true),
                FleetTenantSpec::new("standard", QosClass::Silver, false),
                FleetTenantSpec::new("gold", QosClass::Gold, false),
            ],
            files_per_tenant: 4,
            file_bytes: 8 << 20,
            requests: 4096,
            mean_interarrival_ns: 20 * simclock::NS_PER_US,
            reads_per_request: 4,
            read_bytes: 64 * 1024,
            zipf_theta: 0.9,
            only_tenant: None,
            seed: 42,
        }
    }
}

impl FleetConfig {
    /// The arbiter-facing tenant table (same order as [`Self::tenants`],
    /// so [`TenantId`] indexes agree).
    pub fn tenant_specs(&self) -> Vec<TenantSpec> {
        self.tenants
            .iter()
            .map(|t| TenantSpec::new(&t.name, t.qos))
            .collect()
    }

    /// Path of tenant `t`'s file `f`.
    pub fn path(&self, tenant: usize, file: u64) -> String {
        format!("/fleet/t{tenant}/f{file}.bin")
    }

    /// File size for tenant `t` (the per-tenant override, if any).
    pub fn tenant_file_bytes(&self, tenant: usize) -> u64 {
        self.tenants[tenant].file_bytes.unwrap_or(self.file_bytes)
    }

    /// Aggregate dataset bytes across all tenants.
    pub fn dataset_bytes(&self) -> u64 {
        (0..self.tenants.len())
            .map(|t| self.files_per_tenant * self.tenant_file_bytes(t))
            .sum()
    }
}

/// Per-tenant outcome.
#[derive(Debug, Clone)]
pub struct FleetTenantResult {
    /// Tenant name.
    pub name: String,
    /// Requests executed.
    pub requests: u64,
    /// Reads issued.
    pub reads: u64,
    /// Reads that missed the cache (paid a demand fill).
    pub miss_reads: u64,
    /// Pages those reads covered.
    pub pages: u64,
    /// Pages served from cache (hits + prefetch hits).
    pub hit_pages: u64,
    /// Median request response time (completion − arrival), virtual ns.
    pub p50_response_ns: u64,
    /// p99 request response time, virtual ns.
    pub p99_response_ns: u64,
    /// Median per-read demand latency (service time only — excludes the
    /// open-loop queueing delay response time carries), virtual ns.
    pub p50_read_ns: u64,
    /// p99 per-read demand latency, virtual ns.
    pub p99_read_ns: u64,
}

/// Fleet outcome.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Per-tenant rows, in tenant-table order.
    pub per_tenant: Vec<FleetTenantResult>,
    /// Requests executed (equals the config's `requests` unless
    /// `only_tenant` filtered the stream).
    pub requests: u64,
    /// Virtual span of the run.
    pub elapsed_ns: u64,
}

impl FleetResult {
    /// The row for `name`, if present.
    pub fn tenant(&self, name: &str) -> Option<&FleetTenantResult> {
        self.per_tenant.iter().find(|t| t.name == name)
    }
}

/// SplitMix64 finalizer (deterministic offset hash).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One exponential inter-arrival gap with the given mean.
fn exp_gap<R: Rng>(rng: &mut R, mean_ns: u64) -> u64 {
    let u: f64 = rng.gen();
    let u = (1.0 - u).max(f64::MIN_POSITIVE); // ln(0) guard
    (-(u.ln()) * mean_ns as f64) as u64
}

/// Sorted-slice percentile (nearest-rank on the inclusive scale).
fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as u64 * pct).div_ceil(100) as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Creates every tenant's dataset (preallocated, cold cache).
pub fn setup_fleet(runtime: &Runtime, cfg: &FleetConfig) {
    for t in 0..cfg.tenants.len() {
        for f in 0..cfg.files_per_tenant {
            runtime
                .os()
                .fs()
                .create_sized(&cfg.path(t, f), cfg.tenant_file_bytes(t))
                .expect("fresh namespace");
        }
    }
}

/// Runs the arrival loop. Call [`setup_fleet`] first.
///
/// Staged prefetch batches are flushed before returning, so telemetry
/// collected right after the call covers every planned prefetch.
pub fn run_fleet(runtime: &Runtime, clock: &mut ThreadClock, cfg: &FleetConfig) -> FleetResult {
    assert!(!cfg.tenants.is_empty(), "fleet needs at least one tenant");
    assert!(cfg.files_per_tenant > 0, "tenants need at least one file");
    assert!(cfg.read_bytes > 0 && cfg.read_bytes <= cfg.file_bytes);
    let start = clock.now();
    let zipf = Zipfian::new(cfg.tenants.len() as u64, cfg.zipf_theta);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let tenant_count = cfg.tenants.len();
    let files = cfg.files_per_tenant as usize;
    // Lazily opened handles and per-file sequential cursors, per tenant.
    let mut handles: Vec<Vec<Option<crossprefetch::CpFile>>> = (0..tenant_count)
        .map(|_| (0..files).map(|_| None).collect())
        .collect();
    let mut cursors: Vec<Vec<u64>> = (0..tenant_count).map(|_| vec![0; files]).collect();
    let mut latencies: Vec<Vec<u64>> = vec![Vec::new(); tenant_count];
    let mut read_lats: Vec<Vec<u64>> = vec![Vec::new(); tenant_count];
    let mut rows: Vec<FleetTenantResult> = cfg
        .tenants
        .iter()
        .map(|t| FleetTenantResult {
            name: t.name.clone(),
            requests: 0,
            reads: 0,
            miss_reads: 0,
            pages: 0,
            hit_pages: 0,
            p50_response_ns: 0,
            p99_response_ns: 0,
            p50_read_ns: 0,
            p99_read_ns: 0,
        })
        .collect();

    let slots: Vec<u64> = (0..tenant_count)
        .map(|t| (cfg.tenant_file_bytes(t) / cfg.read_bytes).max(1))
        .collect();
    let mut arrival = start;
    let mut executed = 0u64;
    for _ in 0..cfg.requests {
        // Every draw happens unconditionally so an `only_tenant` replay
        // sees the identical arrival stream.
        let tenant = zipf.sample(&mut rng) as usize;
        arrival += exp_gap(&mut rng, cfg.mean_interarrival_ns);
        let file = rng.gen_range(0..cfg.files_per_tenant) as usize;
        let raw = rng.next_u64();
        if cfg.only_tenant.is_some_and(|only| only != tenant) {
            continue;
        }
        // Open loop: an arrival in the future idles the driver forward; an
        // arrival in the past starts late and eats the delay as queueing.
        if arrival > clock.now() {
            clock.advance_to(arrival);
        }
        let handle = handles[tenant][file].get_or_insert_with(|| {
            runtime
                .open_for_tenant(
                    clock,
                    &cfg.path(tenant, file as u64),
                    TenantId(tenant as u32),
                )
                .expect("setup ran")
        });
        let spec = &cfg.tenants[tenant];
        let slots = slots[tenant];
        let burst_start = splitmix64(raw) % slots;
        for r in 0..cfg.reads_per_request {
            let offset = if spec.random {
                ((burst_start + r) % slots) * cfg.read_bytes
            } else {
                let cursor = cursors[tenant][file];
                cursors[tenant][file] = (cursor + cfg.read_bytes) % (slots * cfg.read_bytes);
                cursor
            };
            let before = clock.now();
            let outcome = handle.read_charge(clock, offset, cfg.read_bytes);
            read_lats[tenant].push(clock.now() - before);
            let row = &mut rows[tenant];
            row.reads += 1;
            row.pages += outcome.pages;
            row.hit_pages += outcome.hit_pages;
            if outcome.miss_pages > 0 {
                row.miss_reads += 1;
            }
        }
        rows[tenant].requests += 1;
        latencies[tenant].push(clock.now() - arrival);
        executed += 1;
    }
    runtime.flush_prefetch_batches(clock);

    for (tenant, (row, lats)) in rows.iter_mut().zip(latencies.iter_mut()).enumerate() {
        lats.sort_unstable();
        row.p50_response_ns = percentile(lats, 50);
        row.p99_response_ns = percentile(lats, 99);
        let reads = &mut read_lats[tenant];
        reads.sort_unstable();
        row.p50_read_ns = percentile(reads, 50);
        row.p99_read_ns = percentile(reads, 99);
    }
    FleetResult {
        per_tenant: rows,
        requests: executed,
        elapsed_ns: (clock.now() - start).max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossprefetch::{Mode, RuntimeConfig, RuntimeReport, TenantsConfig};
    use simos::{Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig};

    fn runtime(memory_mb: u64, with_arbiter: bool, cfg: &FleetConfig) -> Runtime {
        let os = Os::new(
            OsConfig::with_memory_mb(memory_mb),
            Device::new(DeviceConfig::local_nvme()),
            FileSystem::new(FsKind::Ext4Like),
        );
        let mut config = RuntimeConfig::new(Mode::PredictOpt);
        if with_arbiter {
            config.tenants = Some(TenantsConfig::new(cfg.tenant_specs()));
        }
        Runtime::new(os, config)
    }

    fn small_cfg() -> FleetConfig {
        FleetConfig {
            requests: 512,
            file_bytes: 1 << 20,
            files_per_tenant: 2,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn request_counts_add_up() {
        let cfg = small_cfg();
        let rt = runtime(64, true, &cfg);
        setup_fleet(&rt, &cfg);
        let mut clock = rt.new_clock();
        let result = run_fleet(&rt, &mut clock, &cfg);
        assert_eq!(result.requests, cfg.requests);
        let total: u64 = result.per_tenant.iter().map(|t| t.requests).sum();
        assert_eq!(total, cfg.requests);
        // Zipf over tenant index: the first (bronze) tenant is hottest.
        assert!(result.per_tenant[0].requests > result.per_tenant[3].requests);
        // Every tenant sees traffic (starvation sanity).
        assert!(result.per_tenant.iter().all(|t| t.requests > 0));
    }

    #[test]
    fn only_tenant_replays_the_same_arrivals() {
        let cfg = small_cfg();
        let rt = runtime(64, true, &cfg);
        setup_fleet(&rt, &cfg);
        let mut clock = rt.new_clock();
        let full = run_fleet(&rt, &mut clock, &cfg);

        let solo_cfg = FleetConfig {
            only_tenant: Some(3),
            ..cfg.clone()
        };
        let rt2 = runtime(64, true, &solo_cfg);
        setup_fleet(&rt2, &solo_cfg);
        let mut clock2 = rt2.new_clock();
        let solo = run_fleet(&rt2, &mut clock2, &solo_cfg);
        // The replay executes exactly the tenant's share of the stream.
        assert_eq!(solo.requests, full.per_tenant[3].requests);
        assert_eq!(solo.per_tenant[3].reads, full.per_tenant[3].reads);
        assert_eq!(solo.per_tenant[0].requests, 0);
    }

    #[test]
    fn same_seed_runs_are_identical() {
        let cfg = small_cfg();
        let mut exports = Vec::new();
        for _ in 0..2 {
            let rt = runtime(16, true, &cfg);
            setup_fleet(&rt, &cfg);
            let mut clock = rt.new_clock();
            run_fleet(&rt, &mut clock, &cfg);
            exports.push(RuntimeReport::collect(&rt).to_json());
        }
        assert_eq!(exports[0], exports[1]);
    }
}
