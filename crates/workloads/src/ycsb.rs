//! YCSB cloud-serving workloads A–F over the LSM store (Figure 9a).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use minilsm::{bench_key, bench_value, BenchResult, Db, DbIter, ScanDirection};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::{Latest, Zipfian};

/// The six core YCSB workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbWorkload {
    /// 50% read / 50% update, zipfian.
    A,
    /// 95% read / 5% update, zipfian.
    B,
    /// 100% read, zipfian.
    C,
    /// 95% read of recent keys / 5% insert ("latest" distribution).
    D,
    /// 95% short scans / 5% insert, zipfian start keys.
    E,
    /// 50% read / 50% read-modify-write, zipfian.
    F,
}

impl YcsbWorkload {
    /// All six, in order.
    pub fn all() -> [YcsbWorkload; 6] {
        [
            YcsbWorkload::A,
            YcsbWorkload::B,
            YcsbWorkload::C,
            YcsbWorkload::D,
            YcsbWorkload::E,
            YcsbWorkload::F,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            YcsbWorkload::A => "A",
            YcsbWorkload::B => "B",
            YcsbWorkload::C => "C",
            YcsbWorkload::D => "D",
            YcsbWorkload::E => "E",
            YcsbWorkload::F => "F",
        }
    }
}

/// YCSB run-phase parameters.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Which workload mix.
    pub workload: YcsbWorkload,
    /// Client threads (paper: 16).
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: u64,
    /// Keys loaded in the warm-up phase.
    pub keys: u64,
    /// Value size (paper: 4 KiB).
    pub value_bytes: usize,
    /// Zipfian skew (YCSB default 0.99).
    pub theta: f64,
    /// Entries per scan for workload E.
    pub scan_len: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        Self {
            workload: YcsbWorkload::C,
            threads: 16,
            ops_per_thread: 500,
            keys: 100_000,
            value_bytes: 4096,
            theta: 0.99,
            scan_len: 50,
            seed: 99,
        }
    }
}

/// Runs the YCSB run phase against a pre-loaded database.
pub fn run_ycsb(db: &Arc<Db>, cfg: &YcsbConfig) -> BenchResult {
    let zipf = Zipfian::new(cfg.keys, cfg.theta);
    let latest = Latest::new(cfg.keys, cfg.theta);
    let insert_counter = AtomicU64::new(cfg.keys);
    let hits0 = db.runtime().os().stats().hit_pages.get();
    let miss0 = db.runtime().os().stats().miss_pages.get();
    let start = db.runtime().os().global().now();

    let spans: Vec<(u64, u64, u64)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let db = Arc::clone(db);
                let zipf = zipf.clone();
                let latest = latest.clone();
                let cfg = cfg.clone();
                let insert_counter = &insert_counter;
                scope.spawn(move |_| {
                    let mut clock = simclock::ThreadClock::starting_at(
                        Arc::clone(db.runtime().os().global()),
                        start,
                    );
                    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (t as u64) << 32);
                    let mut ops = 0u64;
                    let mut bytes = 0u64;
                    for _ in 0..cfg.ops_per_thread {
                        let dice: f64 = rng.gen();
                        match cfg.workload {
                            YcsbWorkload::A => {
                                if dice < 0.5 {
                                    bytes += ycsb_read(&db, &mut clock, &zipf, &mut rng, &cfg);
                                } else {
                                    ycsb_update(&db, &mut clock, &zipf, &mut rng, &cfg);
                                    bytes += cfg.value_bytes as u64;
                                }
                            }
                            YcsbWorkload::B => {
                                if dice < 0.95 {
                                    bytes += ycsb_read(&db, &mut clock, &zipf, &mut rng, &cfg);
                                } else {
                                    ycsb_update(&db, &mut clock, &zipf, &mut rng, &cfg);
                                    bytes += cfg.value_bytes as u64;
                                }
                            }
                            YcsbWorkload::C => {
                                bytes += ycsb_read(&db, &mut clock, &zipf, &mut rng, &cfg);
                            }
                            YcsbWorkload::D => {
                                if dice < 0.95 {
                                    let max = insert_counter.load(Ordering::Relaxed);
                                    let key = latest.sample(&mut rng, max);
                                    if let Some(v) = db.get(&mut clock, &bench_key(key)) {
                                        bytes += v.len() as u64;
                                    }
                                } else {
                                    let key = insert_counter.fetch_add(1, Ordering::Relaxed);
                                    db.put(
                                        &mut clock,
                                        &bench_key(key),
                                        &bench_value(key, cfg.value_bytes),
                                    );
                                    bytes += cfg.value_bytes as u64;
                                }
                            }
                            YcsbWorkload::E => {
                                if dice < 0.95 {
                                    let from = zipf.sample(&mut rng);
                                    let start_key = bench_key(from);
                                    let mut iter = DbIter::new(
                                        &db,
                                        &mut clock,
                                        Some(&start_key),
                                        ScanDirection::Forward,
                                    );
                                    for _ in 0..cfg.scan_len {
                                        match iter.next(&mut clock) {
                                            Some(entry) => {
                                                bytes += entry.value.map_or(0, |v| v.len() as u64);
                                            }
                                            None => break,
                                        }
                                    }
                                } else {
                                    let key = insert_counter.fetch_add(1, Ordering::Relaxed);
                                    db.put(
                                        &mut clock,
                                        &bench_key(key),
                                        &bench_value(key, cfg.value_bytes),
                                    );
                                    bytes += cfg.value_bytes as u64;
                                }
                            }
                            YcsbWorkload::F => {
                                if dice < 0.5 {
                                    bytes += ycsb_read(&db, &mut clock, &zipf, &mut rng, &cfg);
                                } else {
                                    // Read-modify-write.
                                    let key = zipf.sample(&mut rng);
                                    let kb = bench_key(key);
                                    if let Some(v) = db.get(&mut clock, &kb) {
                                        bytes += v.len() as u64;
                                    }
                                    db.put(&mut clock, &kb, &bench_value(key, cfg.value_bytes));
                                    bytes += cfg.value_bytes as u64;
                                }
                            }
                        }
                        ops += 1;
                    }
                    (ops, bytes, clock.now() - start)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();

    let hits = db.runtime().os().stats().hit_pages.get() - hits0;
    let misses = db.runtime().os().stats().miss_pages.get() - miss0;
    BenchResult {
        ops: spans.iter().map(|s| s.0).sum(),
        bytes: spans.iter().map(|s| s.1).sum(),
        elapsed_ns: spans.iter().map(|s| s.2).max().unwrap_or(1).max(1),
        hit_ratio: if hits + misses == 0 {
            1.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
    }
}

fn ycsb_read(
    db: &Arc<Db>,
    clock: &mut simclock::ThreadClock,
    zipf: &Zipfian,
    rng: &mut StdRng,
    _cfg: &YcsbConfig,
) -> u64 {
    let key = zipf.sample(rng);
    db.get(clock, &bench_key(key)).map_or(0, |v| v.len() as u64)
}

fn ycsb_update(
    db: &Arc<Db>,
    clock: &mut simclock::ThreadClock,
    zipf: &Zipfian,
    rng: &mut StdRng,
    cfg: &YcsbConfig,
) {
    let key = zipf.sample(rng);
    db.put(clock, &bench_key(key), &bench_value(key, cfg.value_bytes));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossprefetch::{Mode, Runtime};
    use minilsm::{DbBench, DbOptions};
    use simos::{Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig};

    fn loaded_db(keys: u64) -> Arc<Db> {
        let os = Os::new(
            OsConfig::with_memory_mb(128),
            Device::new(DeviceConfig::local_nvme()),
            FileSystem::new(FsKind::Ext4Like),
        );
        let runtime = Runtime::with_mode(os, Mode::PredictOpt);
        let mut clock = runtime.new_clock();
        let db = Db::create(runtime, &mut clock, DbOptions::default());
        let bench = DbBench::new(Arc::clone(&db), keys, 256);
        bench.fill_seq();
        db
    }

    #[test]
    fn all_workloads_complete() {
        let db = loaded_db(20_000);
        for workload in YcsbWorkload::all() {
            let cfg = YcsbConfig {
                workload,
                threads: 4,
                ops_per_thread: 50,
                keys: 20_000,
                value_bytes: 256,
                scan_len: 10,
                ..YcsbConfig::default()
            };
            let result = run_ycsb(&db, &cfg);
            assert_eq!(result.ops, 200, "workload {}", workload.label());
            assert!(result.bytes > 0, "workload {}", workload.label());
        }
    }

    #[test]
    fn workload_d_inserts_grow_the_keyspace() {
        let db = loaded_db(10_000);
        let cfg = YcsbConfig {
            workload: YcsbWorkload::D,
            threads: 4,
            ops_per_thread: 200,
            keys: 10_000,
            value_bytes: 128,
            ..YcsbConfig::default()
        };
        run_ycsb(&db, &cfg);
        // Some inserted keys beyond the original space must exist.
        let mut clock = db.runtime().new_clock();
        let found = (10_000..10_040u64).any(|k| db.get(&mut clock, &bench_key(k)).is_some());
        assert!(found, "workload D must insert new keys");
    }
}
