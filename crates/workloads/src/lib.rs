//! # workloads — the CrossPrefetch evaluation workload suite
//!
//! Everything §5 of the paper runs, built from scratch over the simulated
//! stack:
//!
//! * [`micro`] — the custom multi-threaded microbenchmark (private/shared
//!   files × sequential/batched-random, plus the Figure 6 reader/writer
//!   mix);
//! * [`ycsb`] — YCSB workloads A–F with Zipfian and latest-biased request
//!   distributions ([`zipf`]), run against the `minilsm` store;
//! * [`filebench`] — multi-instance Filebench personalities (seqread,
//!   randread, metadata-heavy "mongodb", videoserver);
//! * [`snappy`] — a real Snappy block-format codec and the parallel
//!   file-compression workload;
//! * [`kvprobe`] — a zipfian index-then-data probe stream (the pattern
//!   the correlation prediction engine mines and the strided counter
//!   cannot), driving the engine-comparison bench;
//! * [`fleet`] — an open-loop multi-tenant arrival stream (seeded Poisson
//!   arrivals over zipfian tenant popularity) driving the tenant-arbiter
//!   comparison bench.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod filebench;
pub mod fleet;
pub mod kvprobe;
pub mod micro;
pub mod snappy;
pub mod ycsb;
pub mod zipf;

pub use filebench::{run_filebench, FilebenchConfig, FilebenchResult, Personality};
pub use fleet::{
    run_fleet, setup_fleet, FleetConfig, FleetResult, FleetTenantResult, FleetTenantSpec,
};
pub use kvprobe::{run_kvprobe, setup_kvprobe, KvProbeConfig, KvProbeResult};
pub use micro::{run_micro, run_shared_rw, setup_micro, MicroConfig, MicroPattern, MicroResult};
pub use snappy::{compress, decompress, run_snappy, SnappyConfig, SnappyError, SnappyResult};
pub use ycsb::{run_ycsb, YcsbConfig, YcsbWorkload};
pub use zipf::{Latest, Zipfian};
