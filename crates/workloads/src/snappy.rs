//! A from-scratch Snappy block-format codec plus the paper's parallel
//! file-compression workload (Figure 9b).
//!
//! The encoder follows the public Snappy format description: a varint
//! uncompressed-length preamble, then a stream of literal and copy
//! elements. Literals use tag `00` with the length (or a length escape) in
//! the upper bits; copies use tag `01` (4–11 byte length, 11-bit offset)
//! or tag `10` (1–64 byte length, 16-bit offset). Matching uses a greedy
//! hash of 4-byte windows, like the reference implementation's fast path.
//!
//! The workload mirrors §5.5: 16 threads each stream 100 MB-class files
//! through the runtime (one or two large reads per file), compress them
//! for real, and write the output — a memory-hungry streaming pattern
//! whose throughput is very sensitive to prefetch/eviction policy when
//! memory is smaller than the dataset.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossprefetch::{Advice, Mode, Runtime, RuntimeConfig};
use simclock::{transfer_ns, Throughput};
use simos::Os;

const MAX_OFFSET_1BYTE: usize = 1 << 11;
const MAX_OFFSET_2BYTE: usize = 1 << 16;

fn emit_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn read_varint(data: &[u8]) -> Option<(u64, usize)> {
    let mut v = 0u64;
    for (i, &b) in data.iter().enumerate().take(10) {
        v |= ((b & 0x7F) as u64) << (7 * i);
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
    }
    None
}

fn emit_literal(out: &mut Vec<u8>, lit: &[u8]) {
    let n = lit.len() - 1;
    if n < 60 {
        out.push((n as u8) << 2);
    } else if n < 256 {
        out.push(60 << 2);
        out.push(n as u8);
    } else if n < 65536 {
        out.push(61 << 2);
        out.extend_from_slice(&(n as u16).to_le_bytes());
    } else {
        out.push(62 << 2);
        out.extend_from_slice(&(n as u32).to_le_bytes()[..3]);
    }
    out.extend_from_slice(lit);
}

fn emit_copy(out: &mut Vec<u8>, offset: usize, mut len: usize) {
    // Long matches split into <=64-byte copies.
    while len > 0 {
        let take = len.min(64);
        if (4..=11).contains(&take) && offset < MAX_OFFSET_1BYTE {
            out.push(0b01 | (((take - 4) as u8) << 2) | (((offset >> 8) as u8) << 5));
            out.push(offset as u8);
        } else {
            debug_assert!(offset < MAX_OFFSET_2BYTE);
            out.push(0b10 | (((take - 1) as u8) << 2));
            out.extend_from_slice(&(offset as u16).to_le_bytes());
        }
        len -= take;
    }
}

fn hash4(data: &[u8], pos: usize) -> usize {
    let word = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
    (word.wrapping_mul(0x1E35_A7BD) >> 18) as usize & (HASH_SIZE - 1)
}

const HASH_SIZE: usize = 1 << 14;

/// Compresses `input` into the Snappy block format.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    emit_varint(&mut out, input.len() as u64);
    if input.is_empty() {
        return out;
    }
    let mut table = [0usize; HASH_SIZE];
    let mut pos = 0usize;
    let mut lit_start = 0usize;
    // Stop matching near the end; tail is a literal.
    let end = input.len().saturating_sub(4);
    while pos < end {
        let h = hash4(input, pos);
        let candidate = table[h];
        table[h] = pos;
        let offset = pos - candidate;
        if candidate < pos
            && offset < MAX_OFFSET_2BYTE
            && input[candidate..candidate + 4] == input[pos..pos + 4]
        {
            // Extend the match.
            let mut len = 4;
            while pos + len < input.len() && input[candidate + len] == input[pos + len] {
                len += 1;
            }
            if lit_start < pos {
                emit_literal(&mut out, &input[lit_start..pos]);
            }
            emit_copy(&mut out, offset, len);
            pos += len;
            lit_start = pos;
        } else {
            pos += 1;
        }
    }
    if lit_start < input.len() {
        emit_literal(&mut out, &input[lit_start..]);
    }
    out
}

/// Error from [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnappyError(pub &'static str);

impl std::fmt::Display for SnappyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid snappy stream: {}", self.0)
    }
}

impl std::error::Error for SnappyError {}

/// Decompresses a Snappy block-format stream.
///
/// # Errors
///
/// Returns [`SnappyError`] on malformed input.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, SnappyError> {
    let (expected, mut pos) = read_varint(data).ok_or(SnappyError("bad length varint"))?;
    let mut out = Vec::with_capacity(expected as usize);
    while pos < data.len() {
        let tag = data[pos];
        pos += 1;
        match tag & 0b11 {
            0b00 => {
                let n = (tag >> 2) as usize;
                let len = if n < 60 {
                    n + 1
                } else {
                    let extra = n - 59;
                    if pos + extra > data.len() {
                        return Err(SnappyError("truncated literal length"));
                    }
                    let mut v = 0usize;
                    for i in 0..extra {
                        v |= (data[pos + i] as usize) << (8 * i);
                    }
                    pos += extra;
                    v + 1
                };
                if pos + len > data.len() {
                    return Err(SnappyError("truncated literal"));
                }
                out.extend_from_slice(&data[pos..pos + len]);
                pos += len;
            }
            0b01 => {
                if pos >= data.len() {
                    return Err(SnappyError("truncated copy-1"));
                }
                let len = 4 + ((tag >> 2) & 0b111) as usize;
                let offset = (((tag >> 5) as usize) << 8) | data[pos] as usize;
                pos += 1;
                copy_within(&mut out, offset, len)?;
            }
            0b10 => {
                if pos + 2 > data.len() {
                    return Err(SnappyError("truncated copy-2"));
                }
                let len = 1 + (tag >> 2) as usize;
                let offset = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
                pos += 2;
                copy_within(&mut out, offset, len)?;
            }
            _ => return Err(SnappyError("copy-4 tags are not emitted by this encoder")),
        }
    }
    if out.len() as u64 != expected {
        return Err(SnappyError("length mismatch"));
    }
    Ok(out)
}

fn copy_within(out: &mut Vec<u8>, offset: usize, len: usize) -> Result<(), SnappyError> {
    if offset == 0 || offset > out.len() {
        return Err(SnappyError("copy offset out of range"));
    }
    let start = out.len() - offset;
    // Overlapping copies are byte-serial by definition.
    for i in 0..len {
        let b = out[start + i];
        out.push(b);
    }
    Ok(())
}

/// Compression-workload parameters (§5.5).
#[derive(Debug, Clone)]
pub struct SnappyConfig {
    /// Worker threads (paper: 16).
    pub threads: usize,
    /// Files per thread.
    pub files_per_thread: usize,
    /// Bytes per input file (paper: 100 MB; scaled in benches).
    pub file_bytes: u64,
    /// Mechanism mode.
    pub mode: Mode,
    /// Real-compute rate charged to virtual time (bytes/sec of
    /// compression work; ~300 MB/s per core is typical for Snappy-class
    /// codecs on this hardware generation).
    pub compress_bytes_per_sec: f64,
}

impl Default for SnappyConfig {
    fn default() -> Self {
        Self {
            threads: 16,
            files_per_thread: 4,
            file_bytes: 8 << 20,
            mode: Mode::PredictOpt,
            compress_bytes_per_sec: 300e6,
        }
    }
}

/// Outcome of the compression workload.
#[derive(Debug, Clone, Copy)]
pub struct SnappyResult {
    /// Input bytes compressed.
    pub bytes_in: u64,
    /// Output bytes produced.
    pub bytes_out: u64,
    /// Slowest worker's virtual span.
    pub elapsed_ns: u64,
}

impl SnappyResult {
    /// Input MB/s of virtual time.
    pub fn mbps(&self) -> f64 {
        Throughput::new(self.bytes_in, 0, self.elapsed_ns).mb_per_sec()
    }

    /// Achieved compression ratio (in/out).
    pub fn ratio(&self) -> f64 {
        self.bytes_in as f64 / self.bytes_out.max(1) as f64
    }
}

/// Fills one input file with compressible, text-like content (log lines
/// with per-file variation), bypassing the timed I/O path.
fn fill_compressible(os: &Arc<Os>, ino: simos::InodeId, bytes: u64, salt: u64) {
    let mut line = Vec::with_capacity(1 << 16);
    let mut offset = 0u64;
    let mut seq = 0u64;
    while offset < bytes {
        line.clear();
        while line.len() < 1 << 16 {
            line.extend_from_slice(
                format!(
                    "ts={:012} svc=ingest-{:02} level=INFO msg=\"object stored\" shard={:03}\n",
                    seq * 977 + salt,
                    salt % 37,
                    (seq * 7 + salt) % 512
                )
                .as_bytes(),
            );
            seq += 1;
        }
        let take = ((bytes - offset) as usize).min(line.len());
        os.store_content(ino, offset, &line[..take]);
        offset += take as u64;
    }
}

/// Runs the parallel compression workload on a shared OS.
///
/// Files are pre-created with compressible text-like content (cold
/// cache); each worker opens a file, reads it in two large reads (the
/// paper: "one or two read operations, mostly sequential"), compresses
/// for real, writes the `.sz` output, and moves to the next file.
pub fn run_snappy(os: &Arc<Os>, cfg: &SnappyConfig) -> SnappyResult {
    // Pre-create inputs.
    for t in 0..cfg.threads {
        for f in 0..cfg.files_per_thread {
            let ino = os
                .fs()
                .create_sized(&format!("/snappy/in-{t}-{f}"), cfg.file_bytes)
                .expect("fresh namespace");
            fill_compressible(os, ino, cfg.file_bytes, (t * 131 + f) as u64);
        }
    }
    let bytes_out_total = AtomicU64::new(0);
    let start = os.global().now();
    let spans: Vec<(u64, u64)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let os = Arc::clone(os);
                let cfg = cfg.clone();
                let bytes_out_total = &bytes_out_total;
                scope.spawn(move |_| {
                    let runtime = Runtime::new(Arc::clone(&os), RuntimeConfig::new(cfg.mode));
                    let mut clock =
                        simclock::ThreadClock::starting_at(Arc::clone(os.global()), start);
                    let mut bytes_in = 0u64;
                    for f in 0..cfg.files_per_thread {
                        let input = runtime
                            .open(&mut clock, &format!("/snappy/in-{t}-{f}"))
                            .expect("created above");
                        if cfg.mode == Mode::AppOnly {
                            // The paper modifies Snappy to fadvise after
                            // open in the APPonly configuration.
                            input.advise(&mut clock, Advice::Sequential, 0, 0);
                            input.readahead(&mut clock, 0, cfg.file_bytes);
                        }
                        // Stream the file through buffered-I/O-sized reads
                        // (what the OS actually sees under stdio): the
                        // window dynamics of each mechanism apply here.
                        let chunk = 512 * 1024u64;
                        let mut data = Vec::with_capacity(cfg.file_bytes as usize);
                        let mut offset = 0u64;
                        while offset < cfg.file_bytes {
                            let take = chunk.min(cfg.file_bytes - offset);
                            data.extend(input.read(&mut clock, offset, take));
                            offset += take;
                        }
                        bytes_in += data.len() as u64;

                        // Real compression, charged at the codec rate.
                        let compressed = compress(&data);
                        clock.advance(transfer_ns(data.len() as u64, cfg.compress_bytes_per_sec));
                        bytes_out_total.fetch_add(compressed.len() as u64, Ordering::Relaxed);

                        let out = runtime
                            .create(&mut clock, &format!("/snappy/out-{t}-{f}.sz"))
                            .expect("unique output");
                        out.write(&mut clock, 0, &compressed);
                        out.fsync(&mut clock);
                    }
                    (bytes_in, clock.now() - start)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();
    SnappyResult {
        bytes_in: spans.iter().map(|s| s.0).sum(),
        bytes_out: bytes_out_total.load(Ordering::Relaxed),
        elapsed_ns: spans.iter().map(|s| s.1).max().unwrap_or(1).max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple() {
        let data = b"hello hello hello hello world world world";
        let compressed = compress(data);
        assert_eq!(decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn round_trip_empty() {
        let compressed = compress(b"");
        assert_eq!(decompress(&compressed).unwrap(), b"");
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data: Vec<u8> = std::iter::repeat_n(b"abcdefgh".as_slice(), 10_000)
            .flatten()
            .copied()
            .collect();
        let compressed = compress(&data);
        assert!(compressed.len() * 10 < data.len());
        assert_eq!(decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn incompressible_data_round_trips() {
        // SplitMix noise: no matches, pure literals.
        let mut data = vec![0u8; 100_000];
        let mut x = 0x12345u64;
        for b in &mut data {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (x >> 33) as u8;
        }
        let compressed = compress(&data);
        assert_eq!(decompress(&compressed).unwrap(), data);
        // Overhead stays small.
        assert!(compressed.len() < data.len() + data.len() / 100 + 16);
    }

    #[test]
    fn long_matches_split_into_copies() {
        let mut data = vec![b'x'; 1000];
        data.extend_from_slice(b"unique tail");
        let compressed = compress(&data);
        assert_eq!(decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn corrupt_stream_is_rejected() {
        let compressed = compress(b"some data some data some data");
        // Truncate mid-stream.
        let truncated = &compressed[..compressed.len() / 2];
        assert!(decompress(truncated).is_err());
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u32::MAX as u64] {
            let mut buf = Vec::new();
            emit_varint(&mut buf, v);
            assert_eq!(read_varint(&buf), Some((v, buf.len())));
        }
    }

    #[test]
    fn workload_completes_and_compresses() {
        use simos::{Device, DeviceConfig, FileSystem, FsKind, OsConfig};
        let os = Os::new(
            OsConfig::with_memory_mb(64),
            Device::new(DeviceConfig::local_nvme()),
            FileSystem::new(FsKind::Ext4Like),
        );
        let cfg = SnappyConfig {
            threads: 2,
            files_per_thread: 1,
            file_bytes: 2 << 20,
            mode: Mode::PredictOpt,
            compress_bytes_per_sec: 300e6,
        };
        let result = run_snappy(&os, &cfg);
        assert_eq!(result.bytes_in, 2 * (2 << 20));
        assert!(result.bytes_out > 0);
        assert!(result.mbps() > 0.0);
        // Outputs exist.
        assert!(os.fs().lookup("/snappy/out-0-0.sz").is_some());
    }
}
