//! KvProbe: a zipfian index-then-data probe workload (the YCSB-C shape
//! correlation prefetching targets).
//!
//! Each probe samples a key from a [`Zipfian`] distribution, reads the
//! key's *index* page, then walks the key's *record* — a short run of
//! consecutive data pages placed at a hashed (key-order-destroying) slot
//! in the data region. The resulting page stream is exactly the pattern
//! the strided §4.6 counter cannot learn and a correlation miner can:
//!
//! * index page → first record page is a recurring *jump* for hot keys
//!   (mineable association, invisible to a stride detector);
//! * within a record the stream is briefly sequential, so the strided
//!   predictor ramps up and overshoots past the record's end (waste the
//!   engine-comparison gate measures);
//! * hashed record placement means no global stride ever emerges.
//!
//! The driver is single-threaded and fully deterministic for a given
//! config, so engine comparisons and same-seed determinism checks can
//! diff telemetry byte-for-byte.

use crossprefetch::{Runtime, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::zipf::Zipfian;

/// KvProbe parameters.
#[derive(Debug, Clone)]
pub struct KvProbeConfig {
    /// Distinct keys (one index page each).
    pub keys: u64,
    /// Consecutive data pages per record.
    pub record_pages: u64,
    /// Key probes to issue.
    pub probes: u64,
    /// Zipfian skew over the key space (YCSB default 0.99).
    pub theta: f64,
    /// RNG seed for the key sampler.
    pub seed: u64,
}

impl Default for KvProbeConfig {
    fn default() -> Self {
        Self {
            keys: 512,
            record_pages: 8,
            probes: 4096,
            theta: 0.99,
            seed: 42,
        }
    }
}

impl KvProbeConfig {
    /// Pages in the index region (one per key).
    pub fn index_pages(&self) -> u64 {
        self.keys
    }

    /// Total dataset bytes (index region + data region).
    pub fn dataset_bytes(&self) -> u64 {
        (self.index_pages() + self.keys * self.record_pages) * PAGE_SIZE
    }

    /// First byte of `key`'s record: records live at hashed slots so key
    /// order says nothing about data order.
    fn record_offset(&self, key: u64) -> u64 {
        let slot = splitmix64(key ^ self.seed.rotate_left(17)) % self.keys;
        (self.index_pages() + slot * self.record_pages) * PAGE_SIZE
    }
}

/// KvProbe outcome.
#[derive(Debug, Clone, Copy)]
pub struct KvProbeResult {
    /// Index-page reads issued (one per probe).
    pub index_reads: u64,
    /// Data-page reads issued.
    pub data_reads: u64,
    /// Bytes read.
    pub bytes: u64,
    /// Virtual span of the run.
    pub elapsed_ns: u64,
}

/// SplitMix64 finalizer — the slot hash (deterministic, dependency-free).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Creates the probe dataset at `path` (preallocated, cold cache).
pub fn setup_kvprobe(runtime: &Runtime, cfg: &KvProbeConfig, path: &str) {
    runtime
        .os()
        .fs()
        .create_sized(path, cfg.dataset_bytes())
        .expect("fresh namespace");
}

/// Runs the probe loop. Call [`setup_kvprobe`] first.
///
/// Staged prefetch batches are flushed before returning, so telemetry
/// collected right after the call covers every planned prefetch.
pub fn run_kvprobe(
    runtime: &Runtime,
    clock: &mut simclock::ThreadClock,
    cfg: &KvProbeConfig,
    path: &str,
) -> KvProbeResult {
    assert!(cfg.keys > 0, "kvprobe needs at least one key");
    assert!(cfg.record_pages > 0, "records need at least one page");
    let start = clock.now();
    let file = runtime.open(clock, path).expect("setup ran");
    let zipf = Zipfian::new(cfg.keys, cfg.theta);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut index_reads = 0u64;
    let mut data_reads = 0u64;
    for _ in 0..cfg.probes {
        let key = zipf.sample(&mut rng);
        file.read_charge(clock, key * PAGE_SIZE, PAGE_SIZE);
        index_reads += 1;
        let base = cfg.record_offset(key);
        for j in 0..cfg.record_pages {
            file.read_charge(clock, base + j * PAGE_SIZE, PAGE_SIZE);
            data_reads += 1;
        }
    }
    runtime.flush_prefetch_batches(clock);
    KvProbeResult {
        index_reads,
        data_reads,
        bytes: (index_reads + data_reads) * PAGE_SIZE,
        elapsed_ns: (clock.now() - start).max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossprefetch::{EngineKind, Mode, RuntimeConfig};
    use simos::{Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig};

    fn runtime(engine: EngineKind, memory_mb: u64) -> Runtime {
        let os = Os::new(
            OsConfig::with_memory_mb(memory_mb),
            Device::new(DeviceConfig::local_nvme()),
            FileSystem::new(FsKind::Ext4Like),
        );
        let mut config = RuntimeConfig::new(Mode::Predict);
        config.engine = engine;
        Runtime::new(os, config)
    }

    #[test]
    fn probe_counts_match_the_config() {
        let rt = runtime(EngineKind::Strided, 64);
        let cfg = KvProbeConfig {
            probes: 256,
            ..KvProbeConfig::default()
        };
        setup_kvprobe(&rt, &cfg, "/kv");
        let mut clock = rt.new_clock();
        let result = run_kvprobe(&rt, &mut clock, &cfg, "/kv");
        assert_eq!(result.index_reads, 256);
        assert_eq!(result.data_reads, 256 * cfg.record_pages);
        assert_eq!(rt.stats().reads.get(), 256 * (1 + cfg.record_pages));
    }

    #[test]
    fn records_stay_inside_the_data_region() {
        let cfg = KvProbeConfig::default();
        let end = cfg.dataset_bytes();
        for key in 0..cfg.keys {
            let off = cfg.record_offset(key);
            assert!(off >= cfg.index_pages() * PAGE_SIZE);
            assert!(off + cfg.record_pages * PAGE_SIZE <= end);
        }
    }

    #[test]
    fn correlation_engine_mines_the_probe_stream() {
        let rt = runtime(EngineKind::Correlation, 64);
        let cfg = KvProbeConfig {
            probes: 2048,
            ..KvProbeConfig::default()
        };
        setup_kvprobe(&rt, &cfg, "/kv");
        let mut clock = rt.new_clock();
        run_kvprobe(&rt, &mut clock, &cfg, "/kv");
        assert!(rt.stats().engine_mining_passes.get() > 0);
        assert!(
            rt.stats().engine_assoc_runs.get() > 0,
            "hot-key index→record pairs should mine into prefetch runs"
        );
    }

    #[test]
    fn same_seed_runs_are_identical() {
        let run = || {
            let rt = runtime(EngineKind::Adaptive, 64);
            let cfg = KvProbeConfig {
                probes: 1024,
                ..KvProbeConfig::default()
            };
            setup_kvprobe(&rt, &cfg, "/kv");
            let mut clock = rt.new_clock();
            let result = run_kvprobe(&rt, &mut clock, &cfg, "/kv");
            (
                result.elapsed_ns,
                crossprefetch::RuntimeReport::collect(&rt).to_json(),
            )
        };
        let (a_ns, a_json) = run();
        let (b_ns, b_json) = run();
        assert_eq!(a_ns, b_ns);
        assert_eq!(a_json, b_json);
    }
}
