//! The paper's custom multi-threaded microbenchmark (§5.2).
//!
//! Threads issue 16 KiB reads either on **private** per-thread files or on
//! non-overlapping regions of one **shared** file, with **sequential** or
//! **batched-random** access (the paper's "rand" pattern: batched reads
//! within a randomly chosen region, like RocksDB's batched-but-random
//! analysis workload). Figure 6's variant adds concurrent writers to the
//! shared file and reports aggregated write throughput.
//!
//! The `APPonly` policy is implemented here, as in real applications: for
//! sequential work the app issues a large `readahead` per region and
//! assumes it completed (Figure 1's under-prefetch pathology); for random
//! work it disables OS prefetching like RocksDB does.

use std::sync::Arc;

use crossprefetch::{Advice, CpFile, Mode, Runtime, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::Throughput;

/// Access pattern of the microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroPattern {
    /// Sequential streaming over the thread's region.
    Sequential,
    /// Batched-random: pick a random spot in the region, read `batch`
    /// consecutive I/Os, jump again.
    BatchedRandom {
        /// Consecutive I/Os per batch.
        batch: u64,
    },
}

/// Microbenchmark parameters.
#[derive(Debug, Clone)]
pub struct MicroConfig {
    /// Worker threads.
    pub threads: usize,
    /// Total dataset bytes (split across private files, or the shared
    /// file's size).
    pub data_bytes: u64,
    /// Bytes per I/O (paper: 16 KiB).
    pub io_bytes: u64,
    /// I/O operations per thread.
    pub ops_per_thread: u64,
    /// One shared file vs. a private file per thread.
    pub shared: bool,
    /// Access pattern.
    pub pattern: MicroPattern,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MicroConfig {
    fn default() -> Self {
        Self {
            threads: 8,
            data_bytes: 1 << 30,
            io_bytes: 16 * 1024,
            ops_per_thread: 2_000,
            shared: true,
            pattern: MicroPattern::BatchedRandom { batch: 8 },
            seed: 42,
        }
    }
}

/// Microbenchmark outcome.
#[derive(Debug, Clone, Copy)]
pub struct MicroResult {
    /// Bytes read (or written, for the writer side of the RW variant).
    pub bytes: u64,
    /// Operations completed.
    pub ops: u64,
    /// Slowest worker's virtual span.
    pub elapsed_ns: u64,
    /// Page-cache miss rate over the run, in percent.
    pub miss_pct: f64,
}

impl MicroResult {
    /// Aggregate MB/s of virtual time.
    pub fn mbps(&self) -> f64 {
        Throughput::new(self.bytes, self.ops, self.elapsed_ns).mb_per_sec()
    }
}

fn region_of(cfg: &MicroConfig, thread: usize) -> (u64, u64) {
    let region = cfg.data_bytes / cfg.threads as u64;
    let start = region * thread as u64;
    (start, start + region)
}

fn apply_apponly_policy(
    runtime: &Runtime,
    clock: &mut simclock::ThreadClock,
    file: &CpFile,
    pattern: MicroPattern,
) {
    if runtime.config().mode != Mode::AppOnly {
        return;
    }
    match pattern {
        // Sequential: hint the OS and prefetch big (which the OS caps).
        MicroPattern::Sequential => {
            file.advise(clock, Advice::Sequential, 0, 0);
        }
        // Random: RocksDB-style distrust — disable OS prefetching.
        MicroPattern::BatchedRandom { .. } => {
            file.advise(clock, Advice::Random, 0, 0);
        }
    }
}

/// Prepares the dataset files for `cfg` (preallocated, cold cache).
pub fn setup_micro(runtime: &Runtime, cfg: &MicroConfig) {
    let clock = runtime.new_clock();
    if cfg.shared {
        runtime
            .os()
            .fs()
            .create_sized("/micro/shared", cfg.data_bytes)
            .expect("fresh namespace");
    } else {
        let per_thread = cfg.data_bytes / cfg.threads as u64;
        for t in 0..cfg.threads {
            runtime
                .os()
                .fs()
                .create_sized(&format!("/micro/t{t}"), per_thread)
                .expect("fresh namespace");
        }
    }
    let _ = clock;
}

/// Runs the read microbenchmark. Call [`setup_micro`] first.
pub fn run_micro(runtime: &Runtime, cfg: &MicroConfig) -> MicroResult {
    let hits0 = runtime.os().stats().hit_pages.get();
    let miss0 = runtime.os().stats().miss_pages.get();
    let start = runtime.os().global().now();

    let spans: Vec<(u64, u64)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let runtime = runtime.clone();
                let cfg = cfg.clone();
                scope.spawn(move |_| {
                    let mut clock = simclock::ThreadClock::starting_at(
                        Arc::clone(runtime.os().global()),
                        start,
                    );
                    let path = if cfg.shared {
                        "/micro/shared".to_string()
                    } else {
                        format!("/micro/t{t}")
                    };
                    let file = runtime.open(&mut clock, &path).expect("setup ran");
                    apply_apponly_policy(&runtime, &mut clock, &file, cfg.pattern);

                    let (lo, hi) = if cfg.shared {
                        region_of(&cfg, t)
                    } else {
                        (0, cfg.data_bytes / cfg.threads as u64)
                    };
                    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (t as u64) << 32);
                    let mut bytes = 0u64;
                    let io = cfg.io_bytes;
                    let app_only = runtime.config().mode == Mode::AppOnly;

                    match cfg.pattern {
                        MicroPattern::Sequential => {
                            let mut offset = lo;
                            let mut since_ra = u64::MAX; // force initial RA
                            for _ in 0..cfg.ops_per_thread {
                                if offset + io > hi {
                                    offset = lo;
                                }
                                // APPonly: prefetch 4 MiB ahead per region
                                // and assume it happened (Figure 1).
                                if app_only && since_ra >= (4 << 20) {
                                    file.readahead(&mut clock, offset, 4 << 20);
                                    since_ra = 0;
                                }
                                file.read_charge(&mut clock, offset, io);
                                offset += io;
                                since_ra = since_ra.saturating_add(io);
                                bytes += io;
                            }
                        }
                        MicroPattern::BatchedRandom { batch } => {
                            let span = (hi - lo).saturating_sub(batch * io).max(1);
                            let mut done = 0u64;
                            while done < cfg.ops_per_thread {
                                let base = lo + rng.gen_range(0..span) / PAGE_SIZE * PAGE_SIZE;
                                for j in 0..batch.min(cfg.ops_per_thread - done) {
                                    file.read_charge(&mut clock, base + j * io, io);
                                    bytes += io;
                                }
                                done += batch;
                            }
                        }
                    }
                    (bytes, clock.now() - start)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();

    let hits = runtime.os().stats().hit_pages.get() - hits0;
    let misses = runtime.os().stats().miss_pages.get() - miss0;
    MicroResult {
        bytes: spans.iter().map(|s| s.0).sum(),
        ops: cfg.threads as u64 * cfg.ops_per_thread,
        elapsed_ns: spans.iter().map(|s| s.1).max().unwrap_or(1).max(1),
        miss_pct: if hits + misses == 0 {
            0.0
        } else {
            100.0 * misses as f64 / (hits + misses) as f64
        },
    }
}

/// Figure 6 variant: `readers` random readers plus `writers` random
/// writers on non-overlapping ranges of one shared file. Returns
/// `(write_result, read_result)`.
pub fn run_shared_rw(
    runtime: &Runtime,
    readers: usize,
    writers: usize,
    data_bytes: u64,
    ops_per_thread: u64,
    seed: u64,
) -> (MicroResult, MicroResult) {
    {
        runtime
            .os()
            .fs()
            .create_sized("/micro/rw", data_bytes)
            .expect("fresh namespace");
    }
    let io = 16 * 1024u64;
    let total = readers + writers;
    let start = runtime.os().global().now();

    let spans: Vec<(bool, u64, u64)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..total)
            .map(|t| {
                let runtime = runtime.clone();
                scope.spawn(move |_| {
                    let is_writer = t < writers;
                    let mut clock = simclock::ThreadClock::starting_at(
                        Arc::clone(runtime.os().global()),
                        start,
                    );
                    let file = runtime.open(&mut clock, "/micro/rw").expect("created");
                    if runtime.config().mode == Mode::AppOnly {
                        file.advise(&mut clock, Advice::Random, 0, 0);
                    }
                    let region = data_bytes / total as u64;
                    let lo = region * t as u64;
                    let span = region.saturating_sub(8 * io).max(1);
                    let mut rng = StdRng::seed_from_u64(seed ^ (t as u64) << 28);
                    let mut bytes = 0u64;
                    let mut done = 0u64;
                    while done < ops_per_thread {
                        let base = lo + rng.gen_range(0..span) / PAGE_SIZE * PAGE_SIZE;
                        for j in 0..8.min(ops_per_thread - done) {
                            if is_writer {
                                file.write_charge(&mut clock, base + j * io, io);
                            } else {
                                file.read_charge(&mut clock, base + j * io, io);
                            }
                            bytes += io;
                        }
                        done += 8;
                    }
                    (is_writer, bytes, clock.now() - start)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();

    let collect = |want_writer: bool| {
        let picked: Vec<_> = spans.iter().filter(|s| s.0 == want_writer).collect();
        MicroResult {
            bytes: picked.iter().map(|s| s.1).sum(),
            ops: picked.len() as u64 * ops_per_thread,
            elapsed_ns: picked.iter().map(|s| s.2).max().unwrap_or(1).max(1),
            miss_pct: 0.0,
        }
    };
    (collect(true), collect(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::{Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig};

    fn runtime(mode: Mode, memory_mb: u64) -> Runtime {
        let os = Os::new(
            OsConfig::with_memory_mb(memory_mb),
            Device::new(DeviceConfig::local_nvme()),
            FileSystem::new(FsKind::Ext4Like),
        );
        Runtime::with_mode(os, mode)
    }

    fn small_cfg(pattern: MicroPattern, shared: bool) -> MicroConfig {
        // 8 threads keep the device saturated, where prefetch efficiency
        // (request amortization) separates the mechanisms.
        MicroConfig {
            threads: 8,
            data_bytes: 256 << 20,
            io_bytes: 16 * 1024,
            ops_per_thread: 1200,
            shared,
            pattern,
            seed: 7,
        }
    }

    #[test]
    fn sequential_crossp_competitive_with_osonly() {
        // Sequential streams are where OS readahead is at its best; the
        // paper reports modest CrossPrefetch gains there. Under parallel
        // test execution the thread interleaving adds noise, so this test
        // asserts parity-or-better with a small tolerance — the decisive
        // full-scale comparison is fig05_micro's bench output.
        let run = |mode| {
            let rt = runtime(mode, 128);
            let cfg = small_cfg(MicroPattern::Sequential, false);
            setup_micro(&rt, &cfg);
            let result = run_micro(&rt, &cfg);
            (result.mbps(), result.miss_pct)
        };
        let (osonly, _) = run(Mode::OsOnly);
        let (crossp, crossp_miss) = run(Mode::Predict);
        assert!(
            crossp > osonly * 0.9,
            "seq: CrossP {crossp:.0} MB/s vs OSonly {osonly:.0} MB/s"
        );
        assert!(crossp_miss < 10.0, "seq miss rate {crossp_miss:.0}%");
    }

    #[test]
    fn batched_random_crossp_beats_apponly() {
        let run = |mode| {
            let rt = runtime(mode, 64);
            let cfg = small_cfg(MicroPattern::BatchedRandom { batch: 8 }, true);
            setup_micro(&rt, &cfg);
            let result = run_micro(&rt, &cfg);
            (result.mbps(), result.miss_pct)
        };
        let (app, app_miss) = run(Mode::AppOnly);
        let (crossp, crossp_miss) = run(Mode::PredictOpt);
        assert!(
            crossp > app,
            "rand: CrossP {crossp:.0} MB/s vs APPonly {app:.0} MB/s"
        );
        assert!(
            crossp_miss < app_miss,
            "rand miss: CrossP {crossp_miss:.0}% vs APPonly {app_miss:.0}%"
        );
    }

    #[test]
    fn shared_rw_produces_both_sides() {
        let rt = runtime(Mode::PredictOpt, 64);
        let (w, r) = run_shared_rw(&rt, 4, 2, 128 << 20, 200, 3);
        assert!(w.bytes > 0 && r.bytes > 0);
        assert_eq!(w.ops, 2 * 200);
        assert_eq!(r.ops, 4 * 200);
    }

    #[test]
    fn private_files_have_no_shared_tree_contention() {
        let rt = runtime(Mode::OsOnly, 128);
        let cfg = small_cfg(MicroPattern::Sequential, false);
        setup_micro(&rt, &cfg);
        run_micro(&rt, &cfg);
        // Four private files exist.
        assert!(rt.os().fs().lookup("/micro/t0").is_some());
        assert!(rt.os().fs().lookup("/micro/t3").is_some());
    }
}
