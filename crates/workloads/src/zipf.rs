//! Zipfian and latest-biased key distributions (YCSB's request generators).

use rand::Rng;

/// A Zipfian generator over `0..n` with skew `theta`, using the
/// Gray et al. rejection-free inversion method popularized by YCSB.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Builds a generator over `0..n` with skew `theta` (YCSB default
    /// 0.99).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian needs a non-empty key space");
        // Strictly exclusive on both ends: theta = 0 degenerates to a
        // uniform distribution the inversion constants are not defined
        // for (eta divides by 1 - zeta2/zetan terms derived assuming
        // skew), and theta = 1 makes alpha blow up. The old half-open
        // `(0.0..1.0).contains` check let 0.0 slip through the
        // documented contract.
        assert!(theta > 0.0 && theta < 1.0, "theta {theta} must be in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation is O(n); cap the exact sum and extrapolate via
        // the Euler–Maclaurin tail for large n.
        const EXACT: u64 = 100_000;
        let exact_n = n.min(EXACT);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT {
            // ∫ x^-theta dx from EXACT to n.
            let a = 1.0 - theta;
            sum += ((n as f64).powf(a) - (EXACT as f64).powf(a)) / a;
        }
        sum
    }

    /// Samples a key; small keys are hot.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(self.alpha);
        ((self.n as f64) * spread) as u64 % self.n
    }

    /// Key-space size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Internal zeta(2) — exposed for tests.
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// YCSB's "latest" distribution: zipfian over recency, so the most
/// recently inserted keys are hottest (workload D).
#[derive(Debug, Clone)]
pub struct Latest {
    zipf: Zipfian,
}

impl Latest {
    /// Builds a latest-biased sampler over the first `n` inserted keys.
    pub fn new(n: u64, theta: f64) -> Self {
        Self {
            zipf: Zipfian::new(n, theta),
        }
    }

    /// Samples a key given the current maximum key `max_key` (exclusive).
    pub fn sample<R: Rng>(&self, rng: &mut R, max_key: u64) -> u64 {
        let offset = self.zipf.sample(rng) % max_key.max(1);
        max_key - 1 - offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let zipf = Zipfian::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn distribution_is_skewed_toward_small_keys() {
        let zipf = Zipfian::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0u64;
        let trials = 100_000;
        for _ in 0..trials {
            if zipf.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // 1% of the key space should draw far more than 1% of requests.
        let frac = head as f64 / trials as f64;
        assert!(frac > 0.3, "hot 1% drew only {frac}");
    }

    #[test]
    fn large_keyspace_uses_extrapolated_zeta() {
        let zipf = Zipfian::new(100_000_000, 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 100_000_000);
        }
    }

    #[test]
    fn latest_prefers_recent_keys() {
        let latest = Latest::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(4);
        let max_key = 10_000;
        let mut recent = 0u64;
        let trials = 50_000;
        for _ in 0..trials {
            let k = latest.sample(&mut rng, max_key);
            assert!(k < max_key);
            if k >= max_key - 100 {
                recent += 1;
            }
        }
        assert!(recent as f64 / trials as f64 > 0.3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_keyspace_rejected() {
        Zipfian::new(0, 0.99);
    }

    #[test]
    #[should_panic(expected = "must be in (0,1)")]
    fn zero_theta_rejected() {
        // The documented contract is exclusive on both ends; 0.0 used to
        // slip through the half-open range check.
        Zipfian::new(1000, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be in (0,1)")]
    fn unit_theta_rejected() {
        Zipfian::new(1000, 1.0);
    }

    #[test]
    fn boundary_thetas_just_inside_are_accepted() {
        let mut rng = StdRng::seed_from_u64(5);
        for theta in [1e-9, 1.0 - 1e-9] {
            let zipf = Zipfian::new(1000, theta);
            for _ in 0..1000 {
                assert!(zipf.sample(&mut rng) < 1000);
            }
        }
    }
}
