//! Diagnostics harness: focused single-scenario runs with full telemetry,
//! used while developing the performance model and kept as a tuning tool.
//!
//! Usage: `cargo run --release -p workloads --example diagnostics -- <scenario>`
//!
//! Scenarios: `multiget`, `rand`, `shared-seq`, `reverse`, `ycsb-e`,
//! `fetchall`, `threads`, `all`.

use crossprefetch::{Mode, Runtime, RuntimeReport};
use minilsm::{Db, DbBench, DbOptions};
use simos::{Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig};
use std::sync::Arc;
use workloads::{
    run_micro, run_ycsb, setup_micro, MicroConfig, MicroPattern, YcsbConfig, YcsbWorkload,
};

fn boot(memory_mb: u64) -> Arc<Os> {
    Os::new(
        OsConfig::with_memory_mb(memory_mb),
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    )
}

fn lsm(mode: Mode, memory_mb: u64, keys: u64, value_bytes: usize) -> (Runtime, DbBench) {
    let os = boot(memory_mb);
    let rt = Runtime::with_mode(Arc::clone(&os), mode);
    let mut clock = rt.new_clock();
    let db = Db::create(rt.clone(), &mut clock, DbOptions::default());
    let bench = DbBench::new(db, keys, value_bytes);
    bench.fill_seq();
    let mut c = os.new_clock();
    os.drop_caches(&mut c);
    rt.drop_cache_view(&mut c);
    (rt, bench)
}

fn report(rt: &Runtime, headline: String) {
    println!("{headline}");
    println!("{}\n", RuntimeReport::collect(rt));
}

fn multiget() {
    println!("--- multireadrandom, 32 threads, DB fits in memory ---");
    for mode in [Mode::AppOnly, Mode::OsOnly, Mode::Predict, Mode::PredictOpt] {
        let (rt, bench) = lsm(mode, 512, 100_000, 4096);
        let result = bench.multiread_random(32, 40, 16, 0xF162);
        report(
            &rt,
            format!(
                "{}: {:.0} kops/s, miss {:.0}%",
                mode.label(),
                result.kops(),
                100.0 * (1.0 - result.hit_ratio)
            ),
        );
    }
}

fn micro(pattern: MicroPattern, shared: bool, label: &str) {
    println!("--- micro {label} ---");
    for mode in [Mode::AppOnly, Mode::OsOnly, Mode::PredictOpt] {
        let rt = Runtime::with_mode(boot(64), mode);
        let cfg = MicroConfig {
            threads: 8,
            data_bytes: 138 << 20,
            io_bytes: 16 * 1024,
            ops_per_thread: 1200,
            shared,
            pattern,
            seed: 0x515,
        };
        setup_micro(&rt, &cfg);
        let result = run_micro(&rt, &cfg);
        report(
            &rt,
            format!(
                "{}: {:.0} MB/s, miss {:.0}%",
                mode.label(),
                result.mbps(),
                result.miss_pct
            ),
        );
    }
}

fn reverse() {
    println!("--- db_bench readreverse, 4 threads ---");
    for mode in [Mode::OsOnly, Mode::PredictOpt] {
        let (rt, bench) = lsm(mode, 128, 60_000, 400);
        let result = bench.read_reverse(4);
        report(&rt, format!("{}: {:.0} MB/s", mode.label(), result.mbps()));
    }
}

fn ycsb_e() {
    println!("--- YCSB-E (scan-heavy), 16 threads ---");
    for mode in [Mode::AppOnly, Mode::OsOnly, Mode::PredictOpt] {
        let (rt, bench) = lsm(mode, 64, 24_000, 4096);
        let cfg = YcsbConfig {
            workload: YcsbWorkload::E,
            threads: 16,
            ops_per_thread: 120,
            keys: 24_000,
            value_bytes: 4096,
            theta: 0.99,
            scan_len: 50,
            seed: 0x9A,
        };
        let result = run_ycsb(bench.db(), &cfg);
        report(
            &rt,
            format!("{}: {:.1} kops/s", mode.label(), result.kops()),
        );
    }
}

fn fetchall() {
    println!("--- fetchall on shared-seq (memory-constrained) ---");
    for mode in [Mode::OsOnly, Mode::FetchAllOpt] {
        let rt = Runtime::with_mode(boot(64), mode);
        let cfg = MicroConfig {
            threads: 8,
            data_bytes: 138 << 20,
            io_bytes: 16 * 1024,
            ops_per_thread: 1200,
            shared: true,
            pattern: MicroPattern::Sequential,
            seed: 0x515,
        };
        setup_micro(&rt, &cfg);
        let result = run_micro(&rt, &cfg);
        report(
            &rt,
            format!(
                "{}: {:.0} MB/s, miss {:.0}%",
                mode.label(),
                result.mbps(),
                result.miss_pct
            ),
        );
    }
}

fn threads() {
    println!("--- multireadrandom scaling ---");
    for t in [1usize, 8, 32] {
        let (rt, bench) = lsm(Mode::PredictOpt, 512, 100_000, 4096);
        let result = bench.multiread_random(t, 1280 / t as u64, 16, 0xF162);
        report(&rt, format!("threads={t}: {:.0} kops/s", result.kops()));
    }
}

fn main() {
    let scenario = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match scenario.as_str() {
        "multiget" => multiget(),
        "rand" => micro(MicroPattern::BatchedRandom { batch: 8 }, true, "shared batched-random"),
        "shared-seq" => micro(MicroPattern::Sequential, true, "shared sequential"),
        "reverse" => reverse(),
        "ycsb-e" => ycsb_e(),
        "fetchall" => fetchall(),
        "threads" => threads(),
        "all" => {
            multiget();
            micro(MicroPattern::BatchedRandom { batch: 8 }, true, "shared batched-random");
            micro(MicroPattern::Sequential, true, "shared sequential");
            reverse();
            ycsb_e();
            fetchall();
            threads();
        }
        other => eprintln!(
            "unknown scenario `{other}`; try multiget | rand | shared-seq | reverse | ycsb-e | fetchall | threads | all"
        ),
    }
}
