//! Shared resources modeled as single servers in virtual time.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::stats::LockStats;

/// The outcome of occupying a resource for some service time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Virtual time at which service began (>= request time).
    pub start_ns: u64,
    /// Virtual time at which service completed.
    pub end_ns: u64,
    /// Time spent queued behind earlier occupants (`start - request`).
    pub wait_ns: u64,
}

impl Access {
    /// Total time the caller was delayed by this access (wait + service).
    pub fn latency_ns(&self) -> u64 {
        self.end_ns - (self.start_ns - self.wait_ns)
    }
}

/// Upper bound on tracked busy intervals; beyond it the oldest gap is
/// forfeited (conservative — capacity is never double-booked).
const MAX_INTERVALS: usize = 8192;

/// A single-server resource in virtual time with **gap filling**.
///
/// Storage bandwidth, a journal, or an exclusively-held lock all behave
/// the same way under this model: at any virtual instant at most one
/// request is in service, and occupancy accumulates.
///
/// Worker threads advance their virtual clocks at different rates, so
/// requests arrive out of virtual-time order: a thread whose clock reads
/// 20 ms may request *after* (in real time) another thread stamped
/// 300 ms. A naive next-free horizon would force the earlier-stamped
/// request to queue behind the later one, serializing the simulation on
/// thread skew. This implementation instead tracks busy *intervals* and
/// lets a request occupy the earliest idle gap at or after its own
/// timestamp — single-server semantics that are insensitive to arrival
/// order.
#[derive(Debug)]
pub struct FcfsResource {
    name: &'static str,
    busy: Mutex<VecDeque<(u64, u64)>>,
    busy_ns: AtomicU64,
    stats: LockStats,
}

impl FcfsResource {
    /// Creates an idle resource named for diagnostics.
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            busy: Mutex::new(VecDeque::new()),
            busy_ns: AtomicU64::new(0),
            stats: LockStats::default(),
        }
    }

    /// Diagnostic name of this resource.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Occupies the resource for `service_ns` starting no earlier than
    /// `now`, filling the earliest idle gap.
    ///
    /// Returns when service begins and ends in virtual time. The caller is
    /// responsible for advancing its [`ThreadClock`] to `end_ns`.
    ///
    /// [`ThreadClock`]: crate::ThreadClock
    pub fn access(&self, now: u64, service_ns: u64) -> Access {
        let mut busy = self.busy.lock();
        // Find the insertion point: first interval ending after `now`.
        let mut idx = busy.partition_point(|&(_, end)| end <= now);
        let mut start = now;
        while idx < busy.len() {
            let (istart, iend) = busy[idx];
            if start + service_ns <= istart {
                break; // fits in the gap before interval idx
            }
            start = start.max(iend);
            idx += 1;
        }
        let end = start + service_ns;
        // Insert and merge with neighbours.
        busy.insert(idx, (start, end));
        // Merge right.
        while idx + 1 < busy.len() && busy[idx].1 >= busy[idx + 1].0 {
            let (_, next_end) = busy.remove(idx + 1).expect("bounds checked");
            busy[idx].1 = busy[idx].1.max(next_end);
        }
        // Merge left.
        while idx > 0 && busy[idx - 1].1 >= busy[idx].0 {
            let (_, cur_end) = busy.remove(idx).expect("bounds checked");
            busy[idx - 1].1 = busy[idx - 1].1.max(cur_end);
            idx -= 1;
        }
        // Bound memory: forfeit the oldest gap.
        if busy.len() > MAX_INTERVALS {
            let (first_start, _) = busy[0];
            let (_, second_end) = busy[1];
            busy[1] = (first_start, second_end);
            busy.pop_front();
        }
        drop(busy);

        let wait = start - now;
        self.busy_ns.fetch_add(service_ns, Ordering::Relaxed);
        self.stats.record(wait, service_ns);
        Access {
            start_ns: start,
            end_ns: end,
            wait_ns: wait,
        }
    }

    /// The end of the last busy interval (the classic FCFS horizon).
    pub fn next_free(&self) -> u64 {
        self.busy.lock().back().map_or(0, |&(_, end)| end)
    }

    /// The earliest time at or after `now` when the resource is idle —
    /// i.e. the end of the busy interval containing `now`, or `now`.
    pub fn clear_time(&self, now: u64) -> u64 {
        let busy = self.busy.lock();
        let idx = busy.partition_point(|&(_, end)| end <= now);
        match busy.get(idx) {
            Some(&(start, end)) if start <= now => end,
            _ => now,
        }
    }

    /// Total virtual time the resource has been occupied.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns.load(Ordering::Relaxed)
    }

    /// Contention statistics accumulated so far.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }
}

/// Reader-writer contention model for a lock in virtual time.
///
/// Mirrors the paper's description of the per-file cache-tree lock:
/// writers (page insertions from prefetch or miss fills) serialize and
/// delay everyone; readers (lookups) are delayed by writers in service at
/// their timestamp but run concurrently with each other.
///
/// Readers never occupy the writer's capacity, so this model slightly
/// understates reader-blocks-writer effects — the dominant pathology in
/// the paper (prefetch writers blocking regular reads) is captured.
#[derive(Debug)]
pub struct RwContention {
    writer: FcfsResource,
    read_stats: LockStats,
}

impl RwContention {
    /// Creates an uncontended lock model named for diagnostics.
    pub fn new(name: &'static str) -> Self {
        Self {
            writer: FcfsResource::new(name),
            read_stats: LockStats::default(),
        }
    }

    /// Charges a shared (read) acquisition of `hold_ns`.
    ///
    /// The read begins once any writer holding the lock *at its timestamp*
    /// has drained; it does not block other readers or future writers.
    pub fn read(&self, now: u64, hold_ns: u64) -> Access {
        let start = self.writer.clear_time(now);
        let end = start + hold_ns;
        let wait = start - now;
        self.read_stats.record(wait, hold_ns);
        Access {
            start_ns: start,
            end_ns: end,
            wait_ns: wait,
        }
    }

    /// Charges an exclusive (write) acquisition of `hold_ns`.
    pub fn write(&self, now: u64, hold_ns: u64) -> Access {
        self.writer.access(now, hold_ns)
    }

    /// Statistics for exclusive acquisitions.
    pub fn write_stats(&self) -> &LockStats {
        self.writer.stats()
    }

    /// Statistics for shared acquisitions.
    pub fn read_stats(&self) -> &LockStats {
        &self.read_stats
    }

    /// Total wait time across read and write sides, in nanoseconds.
    pub fn total_wait_ns(&self) -> u64 {
        self.read_stats.wait_ns() + self.writer.stats().wait_ns()
    }

    /// When a writer in service at `now` drains, or `now` if none is.
    ///
    /// Pure peek: nothing is recorded. Optimistic lock coupling uses this
    /// to decide whether a version-validated read descent would have
    /// conflicted with a writer and must charge a retry penalty.
    pub fn write_busy_until(&self, now: u64) -> u64 {
        self.writer.clear_time(now)
    }

    /// Records a shared acquisition whose wait the caller determined.
    ///
    /// Optimistic readers pay a bounded retry penalty instead of the
    /// blocking wait [`RwContention::read`] would charge; the penalty
    /// still lands in the read-side statistics so aggregate lock-wait
    /// accounting covers both locking disciplines.
    pub fn record_read(&self, wait_ns: u64, hold_ns: u64) {
        self.read_stats.record(wait_ns, hold_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_serializes_back_to_back_requests() {
        let device = FcfsResource::new("dev");
        let first = device.access(0, 100);
        assert_eq!((first.start_ns, first.end_ns, first.wait_ns), (0, 100, 0));
        // Requested at t=10 while busy until t=100: waits 90.
        let second = device.access(10, 50);
        assert_eq!(
            (second.start_ns, second.end_ns, second.wait_ns),
            (100, 150, 90)
        );
    }

    #[test]
    fn fcfs_idle_gap_does_not_backfill_for_late_requests() {
        let device = FcfsResource::new("dev");
        device.access(0, 10);
        // A late request starts at its own arrival time.
        let late = device.access(1_000, 10);
        assert_eq!(late.start_ns, 1_000);
        assert_eq!(late.wait_ns, 0);
    }

    #[test]
    fn fcfs_backfills_out_of_order_arrivals() {
        // The skew-tolerance property: a request stamped far in the
        // future must not delay one stamped earlier.
        let device = FcfsResource::new("dev");
        let future = device.access(1_000_000, 100);
        assert_eq!(future.start_ns, 1_000_000);
        let past = device.access(0, 100);
        assert_eq!(past.start_ns, 0, "early request uses the idle past");
        assert_eq!(past.wait_ns, 0);
    }

    #[test]
    fn fcfs_gap_too_small_skips_to_next_gap() {
        let device = FcfsResource::new("dev");
        device.access(0, 100); // [0,100)
        device.access(150, 100); // [150,250)
                                 // 60ns of service does not fit in the 50ns gap [100,150).
        let access = device.access(90, 60);
        assert_eq!(access.start_ns, 250);
        // But 40ns fits.
        let access = device.access(90, 40);
        assert_eq!(access.start_ns, 100);
    }

    #[test]
    fn fcfs_busy_accumulates() {
        let device = FcfsResource::new("dev");
        device.access(0, 30);
        device.access(0, 70);
        assert_eq!(device.busy_ns(), 100);
        assert_eq!(device.stats().acquisitions(), 2);
    }

    #[test]
    fn access_latency_includes_wait() {
        let device = FcfsResource::new("dev");
        device.access(0, 100);
        let second = device.access(40, 60);
        assert_eq!(second.latency_ns(), 60 + 60);
    }

    #[test]
    fn clear_time_finds_idle_point() {
        let device = FcfsResource::new("dev");
        device.access(100, 100); // [100,200)
        assert_eq!(device.clear_time(0), 0);
        assert_eq!(device.clear_time(150), 200);
        assert_eq!(device.clear_time(300), 300);
    }

    #[test]
    fn intervals_merge_when_contiguous() {
        let device = FcfsResource::new("dev");
        for i in 0..100 {
            device.access(i * 10, 10);
        }
        // All contiguous — one interval, horizon at 1000.
        assert_eq!(device.next_free(), 1000);
        assert_eq!(device.clear_time(500), 1000);
    }

    #[test]
    fn readers_do_not_block_each_other() {
        let lock = RwContention::new("tree");
        let r1 = lock.read(0, 50);
        let r2 = lock.read(0, 50);
        assert_eq!(r1.start_ns, 0);
        assert_eq!(r2.start_ns, 0);
    }

    #[test]
    fn writers_block_readers_at_their_timestamp() {
        let lock = RwContention::new("tree");
        lock.write(0, 200);
        let read = lock.read(10, 5);
        assert_eq!(read.start_ns, 200);
        assert_eq!(read.wait_ns, 190);
        assert!(lock.total_wait_ns() >= 190);
        // A reader far in the future is unaffected.
        let late = lock.read(10_000, 5);
        assert_eq!(late.wait_ns, 0);
    }

    #[test]
    fn write_busy_until_peeks_without_recording() {
        let lock = RwContention::new("tree");
        lock.write(0, 200);
        assert_eq!(lock.write_busy_until(50), 200);
        assert_eq!(lock.write_busy_until(200), 200);
        assert_eq!(lock.write_busy_until(201), 201);
        // The peek left no trace in the read-side statistics.
        assert_eq!(lock.read_stats().acquisitions(), 0);
    }

    #[test]
    fn record_read_lands_in_read_stats() {
        let lock = RwContention::new("tree");
        lock.record_read(35, 10);
        assert_eq!(lock.read_stats().wait_ns(), 35);
        assert_eq!(lock.read_stats().acquisitions(), 1);
        assert_eq!(lock.total_wait_ns(), 35);
    }

    #[test]
    fn writers_serialize() {
        let lock = RwContention::new("tree");
        lock.write(0, 100);
        let second = lock.write(0, 100);
        assert_eq!(second.start_ns, 100);
        assert_eq!(lock.write_stats().contended(), 1);
    }

    #[test]
    fn concurrent_fcfs_occupancy_is_consistent() {
        use std::sync::Arc;
        let device = Arc::new(FcfsResource::new("dev"));
        crossbeam::scope(|scope| {
            for _ in 0..8 {
                let device = Arc::clone(&device);
                scope.spawn(move |_| {
                    for _ in 0..500 {
                        device.access(0, 3);
                    }
                });
            }
        })
        .unwrap();
        // 8 threads x 500 accesses x 3ns each, perfectly serialized.
        assert_eq!(device.busy_ns(), 8 * 500 * 3);
        assert_eq!(device.next_free(), 8 * 500 * 3);
    }

    #[test]
    fn interval_cap_is_respected() {
        let device = FcfsResource::new("dev");
        // Many widely spaced intervals.
        for i in 0..(MAX_INTERVALS as u64 + 100) {
            device.access(i * 1000, 1);
        }
        // Still functional and bounded.
        assert!(device.next_free() > 0);
        let access = device.access(0, 1);
        assert!(access.end_ns > 0);
    }
}
