//! Per-thread virtual clocks and the shared global high-water mark.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotone high-water mark of virtual time across all worker threads.
///
/// Individual workers advance their own [`ThreadClock`] independently; the
/// global clock tracks the maximum observed time. Components that need a
/// notion of "now" without a calling thread (e.g. the OS LRU's 30-second
/// file-inactivity rule) read the global clock.
#[derive(Debug, Default)]
pub struct GlobalClock {
    max_ns: AtomicU64,
}

impl GlobalClock {
    /// Creates a global clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the highest virtual time any thread has reached.
    pub fn now(&self) -> u64 {
        self.max_ns.load(Ordering::Acquire)
    }

    /// Publishes `ns` as a candidate high-water mark.
    ///
    /// Returns the (possibly newer) global time after the update.
    pub fn publish(&self, ns: u64) -> u64 {
        let prev = self.max_ns.fetch_max(ns, Ordering::AcqRel);
        prev.max(ns)
    }
}

/// A worker thread's private virtual clock.
///
/// The clock only moves forward. Each simulated operation (syscall entry,
/// lock wait, page copy, device access) advances it by the operation's
/// virtual cost; interactions with shared [`FcfsResource`]s couple clocks
/// across threads.
///
/// [`FcfsResource`]: crate::FcfsResource
#[derive(Debug, Clone)]
pub struct ThreadClock {
    now_ns: u64,
    global: Arc<GlobalClock>,
    publishes: bool,
}

impl ThreadClock {
    /// Creates a clock at time zero attached to `global`.
    pub fn new(global: Arc<GlobalClock>) -> Self {
        Self {
            now_ns: 0,
            global,
            publishes: true,
        }
    }

    /// Creates a clock starting at `start_ns` (e.g. forked from a parent).
    pub fn starting_at(global: Arc<GlobalClock>, start_ns: u64) -> Self {
        let mut clock = Self::new(global);
        clock.advance_to(start_ns);
        clock
    }

    /// Creates a *detached* clock for background/asynchronous work
    /// (prefetch streams, writeback). Detached clocks read the global
    /// high-water mark but never publish to it, so a prefetch stream
    /// scheduling far-future device work does not drag "now" forward for
    /// LRU aging or congestion accounting.
    pub fn detached_at(global: Arc<GlobalClock>, start_ns: u64) -> Self {
        Self {
            now_ns: start_ns,
            global,
            publishes: false,
        }
    }

    /// Current virtual time of this thread.
    pub fn now(&self) -> u64 {
        self.now_ns
    }

    /// The global clock this thread publishes to.
    pub fn global(&self) -> &Arc<GlobalClock> {
        &self.global
    }

    /// Advances by a relative cost in nanoseconds.
    pub fn advance(&mut self, ns: u64) {
        self.now_ns += ns;
        if self.publishes {
            self.global.publish(self.now_ns);
        }
    }

    /// Advances to an absolute completion time.
    ///
    /// Times in the past are ignored (the clock never goes backwards), so it
    /// is always safe to pass a resource completion timestamp.
    pub fn advance_to(&mut self, ns: u64) {
        if ns > self.now_ns {
            self.now_ns = ns;
            if self.publishes {
                self.global.publish(self.now_ns);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let global = Arc::new(GlobalClock::new());
        let mut clock = ThreadClock::new(Arc::clone(&global));
        assert_eq!(clock.now(), 0);
        clock.advance(100);
        assert_eq!(clock.now(), 100);
        assert_eq!(global.now(), 100);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let global = Arc::new(GlobalClock::new());
        let mut clock = ThreadClock::new(global);
        clock.advance(500);
        clock.advance_to(300);
        assert_eq!(clock.now(), 500);
        clock.advance_to(900);
        assert_eq!(clock.now(), 900);
    }

    #[test]
    fn global_tracks_max_across_threads() {
        let global = Arc::new(GlobalClock::new());
        let mut a = ThreadClock::new(Arc::clone(&global));
        let mut b = ThreadClock::new(Arc::clone(&global));
        a.advance(10);
        b.advance(25);
        a.advance(5); // a at 15
        assert_eq!(global.now(), 25);
    }

    #[test]
    fn starting_at_publishes() {
        let global = Arc::new(GlobalClock::new());
        let clock = ThreadClock::starting_at(Arc::clone(&global), 42);
        assert_eq!(clock.now(), 42);
        assert_eq!(global.now(), 42);
    }

    #[test]
    fn publish_returns_latest() {
        let global = GlobalClock::new();
        assert_eq!(global.publish(10), 10);
        assert_eq!(global.publish(5), 10);
        assert_eq!(global.publish(20), 20);
    }

    #[test]
    fn concurrent_publish_is_monotone() {
        let global = Arc::new(GlobalClock::new());
        crossbeam::scope(|scope| {
            for thread_id in 0..8u64 {
                let global = Arc::clone(&global);
                scope.spawn(move |_| {
                    for step in 0..1000u64 {
                        global.publish(thread_id * 1000 + step);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(global.now(), 7 * 1000 + 999);
    }
}
