//! Virtual-time substrate for the CrossPrefetch reproduction.
//!
//! Every performance number in this repository is computed in *virtual
//! nanoseconds*. Worker threads carry a [`ThreadClock`]; shared hardware and
//! software resources (storage devices, per-inode cache-tree locks, bitmap
//! locks, range-tree node locks) are modeled as first-come-first-served
//! servers ([`FcfsResource`]) whose "next free" timestamps introduce queueing
//! delays exactly where the paper reports contention.
//!
//! The split keeps wall-clock time decoupled from simulated I/O time: a
//! 100 GB-scale experiment replays in seconds, while real threads and real
//! locks still exercise the data structures under genuine concurrency.
//!
//! # Example
//!
//! ```
//! use simclock::{GlobalClock, ThreadClock, FcfsResource};
//! use std::sync::Arc;
//!
//! let global = Arc::new(GlobalClock::new());
//! let device = FcfsResource::new("nvme");
//! let mut clock = ThreadClock::new(Arc::clone(&global));
//!
//! // A 4 KiB read that takes 3 us of device service time.
//! let access = device.access(clock.now(), 3_000);
//! clock.advance_to(access.end_ns);
//! assert_eq!(clock.now(), 3_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod cost;
mod hist;
mod resource;
mod stats;

pub use clock::{GlobalClock, ThreadClock};
pub use cost::CostModel;
pub use hist::{bucket_ceil, bucket_floor, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use resource::{Access, FcfsResource, RwContention};
pub use stats::{Counter, LockStats, Throughput};

/// Nanoseconds per microsecond.
pub const NS_PER_US: u64 = 1_000;
/// Nanoseconds per millisecond.
pub const NS_PER_MS: u64 = 1_000_000;
/// Nanoseconds per second.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// Computes the virtual service time for moving `bytes` at `bytes_per_sec`.
///
/// Rounds up so that a nonzero transfer always costs at least one
/// nanosecond, keeping resource occupancy monotone.
///
/// ```
/// // 1 MiB at 1 GiB/s is ~1 ms.
/// let ns = simclock::transfer_ns(1 << 20, (1u64 << 30) as f64);
/// assert!((900_000..1_100_000).contains(&ns));
/// ```
pub fn transfer_ns(bytes: u64, bytes_per_sec: f64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    assert!(
        bytes_per_sec > 0.0,
        "transfer rate must be positive, got {bytes_per_sec}"
    );
    let ns = (bytes as f64) * (NS_PER_SEC as f64) / bytes_per_sec;
    ns.ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_ns_zero_bytes_is_free() {
        assert_eq!(transfer_ns(0, 1e9), 0);
    }

    #[test]
    fn transfer_ns_is_monotone_in_bytes() {
        let small = transfer_ns(4096, 1.4e9);
        let large = transfer_ns(8192, 1.4e9);
        assert!(large >= small);
        assert!(small >= 1);
    }

    #[test]
    fn transfer_ns_scales_inverse_with_bandwidth() {
        let slow = transfer_ns(1 << 20, 0.7e9);
        let fast = transfer_ns(1 << 20, 1.4e9);
        assert!(slow > fast);
        // Exactly 2x modulo rounding.
        assert!((slow as i64 - 2 * fast as i64).unsigned_abs() <= 2);
    }

    #[test]
    #[should_panic(expected = "transfer rate must be positive")]
    fn transfer_ns_rejects_zero_rate() {
        transfer_ns(1, 0.0);
    }
}
