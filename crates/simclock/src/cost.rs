//! Per-operation virtual-time cost constants.

/// Virtual-time costs for the software operations in the simulated stack.
///
/// All values are nanoseconds and loosely calibrated against published
/// numbers for a ~3 GHz x86 server running Linux 5.x: a syscall round trip
/// is ~1 us with mitigations, a 4 KiB copy from the page cache is ~400 ns
/// (~10 GB/s effective memcpy), an uncontended lock operation is tens of
/// nanoseconds, and a radix-tree descent costs a few cache misses per page.
///
/// The *shape* of the paper's results is insensitive to modest changes in
/// these constants (see `tests/sensitivity.rs` at the workspace root); they
/// set scale, while queueing on [`FcfsResource`]s sets relative ordering.
///
/// [`FcfsResource`]: crate::FcfsResource
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed user/kernel crossing cost charged per system call.
    pub syscall_ns: u64,
    /// Copying one 4 KiB page between kernel and user buffers.
    pub page_copy_ns: u64,
    /// Walking the per-file cache tree to locate one page (slow path).
    pub tree_walk_per_page_ns: u64,
    /// Inserting one page into the per-file cache tree.
    pub tree_insert_per_page_ns: u64,
    /// Hold time charged on the cache-tree lock per page touched.
    pub tree_lock_hold_per_page_ns: u64,
    /// Checking or setting one 64-page word of a cache-state bitmap.
    pub bitmap_word_ns: u64,
    /// Hold time on the per-inode bitmap rw-lock per operation.
    pub bitmap_lock_hold_ns: u64,
    /// Uncontended lock/unlock pair (fast path) cost.
    pub lock_op_ns: u64,
    /// Scanning one page's metadata during an mincore/fincore-style walk.
    pub fincore_scan_per_page_ns: u64,
    /// Fixed cost of the address-space-wide lock taken by fincore/mincore.
    pub fincore_mmap_lock_ns: u64,
    /// Copying one 64-page bitmap word to user space via `readahead_info`.
    pub bitmap_copy_word_ns: u64,
    /// LRU bookkeeping per page moved between lists.
    pub lru_per_page_ns: u64,
    /// Page allocation (buddy/pcp) cost per page.
    pub page_alloc_ns: u64,
    /// Predictor update per intercepted I/O in CROSS-LIB.
    pub predictor_step_ns: u64,
    /// Range-tree descent plus per-node lock in CROSS-LIB.
    pub range_tree_op_ns: u64,
    /// Major-fault fixed cost for memory-mapped access (trap + page-table).
    pub fault_ns: u64,
    /// Minor cost of touching an already-resident mapped page.
    pub mmap_minor_ns: u64,
    /// Per-level descent charge of the B+ range index (version probe per
    /// inner node). Defaults to 0: `range_tree_op_ns` already amortises a
    /// shallow descent, and a zero default keeps the flat-vs-B+ index swap
    /// timing-neutral for the single-threaded determinism gate. Raise it
    /// for sensitivity runs.
    pub range_index_descent_ns: u64,
    /// Structural charge per leaf split in the B+ range index (arena
    /// allocation + key insertion along the spine). Defaults to 0 for the
    /// same timing-neutrality reason as `range_index_descent_ns`.
    pub range_index_split_ns: u64,
    /// Structural charge per leaf merge in the B+ range index (bitmap
    /// word-OR + key removal along the spine). Defaults to 0.
    pub range_index_merge_ns: u64,
    /// Penalty an optimistic read descent pays when version validation
    /// fails against a writer in service and the reader re-descends
    /// instead of blocking (always capped at the blocking wait it
    /// replaces). Nonzero by default: validation failures only exist under
    /// multi-threaded contention, so the charge never perturbs
    /// single-threaded timelines.
    pub range_index_retry_ns: u64,
}

impl CostModel {
    /// Cost of copying `pages` cached pages to a user buffer.
    pub fn copy_pages_ns(&self, pages: u64) -> u64 {
        self.page_copy_ns * pages
    }

    /// Cost of walking the cache tree for `pages` pages.
    pub fn tree_walk_ns(&self, pages: u64) -> u64 {
        self.tree_walk_per_page_ns * pages
    }

    /// Cost of a bitmap scan covering `pages` pages (64 pages per word).
    pub fn bitmap_scan_ns(&self, pages: u64) -> u64 {
        self.bitmap_word_ns * pages.div_ceil(64).max(1)
    }

    /// Cost of copying a `pages`-page bitmap window to user space.
    pub fn bitmap_copy_ns(&self, pages: u64) -> u64 {
        self.bitmap_copy_word_ns * pages.div_ceil(64).max(1)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            syscall_ns: 1_000,
            page_copy_ns: 400,
            tree_walk_per_page_ns: 120,
            tree_insert_per_page_ns: 250,
            tree_lock_hold_per_page_ns: 150,
            bitmap_word_ns: 12,
            bitmap_lock_hold_ns: 60,
            lock_op_ns: 40,
            fincore_scan_per_page_ns: 90,
            fincore_mmap_lock_ns: 4_000,
            bitmap_copy_word_ns: 10,
            lru_per_page_ns: 50,
            page_alloc_ns: 180,
            predictor_step_ns: 25,
            range_tree_op_ns: 90,
            fault_ns: 1_500,
            mmap_minor_ns: 120,
            range_index_descent_ns: 0,
            range_index_split_ns: 0,
            range_index_merge_ns: 0,
            range_index_retry_ns: 120,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_are_positive() {
        let costs = CostModel::default();
        assert!(costs.syscall_ns > 0);
        assert!(costs.page_copy_ns > 0);
        assert!(costs.bitmap_word_ns > 0);
    }

    #[test]
    fn bitmap_scan_is_much_cheaper_than_tree_walk() {
        // The core CROSS-OS claim: bitmap lookups beat cache-tree walks.
        let costs = CostModel::default();
        let pages = 512; // 2 MiB prefetch window
        assert!(costs.bitmap_scan_ns(pages) * 10 < costs.tree_walk_ns(pages));
    }

    #[test]
    fn bitmap_scan_rounds_up_to_a_word() {
        let costs = CostModel::default();
        assert_eq!(costs.bitmap_scan_ns(1), costs.bitmap_word_ns);
        assert_eq!(costs.bitmap_scan_ns(64), costs.bitmap_word_ns);
        assert_eq!(costs.bitmap_scan_ns(65), 2 * costs.bitmap_word_ns);
    }

    #[test]
    fn clone_compares_equal() {
        let costs = CostModel::default();
        assert_eq!(costs.clone(), costs);
    }
}
