//! Lightweight atomic statistics used across the simulated stack.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::NS_PER_SEC;

/// A relaxed atomic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// Wait/hold accounting for one contention point.
///
/// The paper's Table 1 reports "time spent on the lock (%)"; this is the
/// accumulator those percentages are computed from.
#[derive(Debug, Default)]
pub struct LockStats {
    acquisitions: Counter,
    contended: Counter,
    wait_ns: Counter,
    hold_ns: Counter,
}

impl LockStats {
    /// Records one acquisition that waited `wait_ns` and held `hold_ns`.
    pub fn record(&self, wait_ns: u64, hold_ns: u64) {
        self.acquisitions.incr();
        if wait_ns > 0 {
            self.contended.incr();
        }
        self.wait_ns.add(wait_ns);
        self.hold_ns.add(hold_ns);
    }

    /// Total acquisitions recorded.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.get()
    }

    /// Acquisitions that had to wait.
    pub fn contended(&self) -> u64 {
        self.contended.get()
    }

    /// Total queueing delay in nanoseconds.
    pub fn wait_ns(&self) -> u64 {
        self.wait_ns.get()
    }

    /// Total hold time in nanoseconds.
    pub fn hold_ns(&self) -> u64 {
        self.hold_ns.get()
    }
}

/// A throughput measurement over virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Payload bytes moved.
    pub bytes: u64,
    /// Operations completed.
    pub ops: u64,
    /// Elapsed virtual nanoseconds (the slowest worker's span).
    pub elapsed_ns: u64,
}

impl Throughput {
    /// Builds a measurement; `elapsed_ns` of zero yields zero rates.
    pub fn new(bytes: u64, ops: u64, elapsed_ns: u64) -> Self {
        Self {
            bytes,
            ops,
            elapsed_ns,
        }
    }

    /// Megabytes per second of virtual time (decimal MB).
    pub fn mb_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        (self.bytes as f64 / 1e6) / (self.elapsed_ns as f64 / NS_PER_SEC as f64)
    }

    /// Thousand operations per second of virtual time.
    pub fn kops_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        (self.ops as f64 / 1e3) / (self.elapsed_ns as f64 / NS_PER_SEC as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let counter = Counter::new();
        counter.incr();
        counter.add(4);
        assert_eq!(counter.get(), 5);
        assert_eq!(counter.take(), 5);
        assert_eq!(counter.get(), 0);
    }

    #[test]
    fn lock_stats_classify_contention() {
        let stats = LockStats::default();
        stats.record(0, 10);
        stats.record(7, 10);
        assert_eq!(stats.acquisitions(), 2);
        assert_eq!(stats.contended(), 1);
        assert_eq!(stats.wait_ns(), 7);
        assert_eq!(stats.hold_ns(), 20);
    }

    #[test]
    fn throughput_rates() {
        let t = Throughput::new(2_000_000, 1_000, NS_PER_SEC);
        assert!((t.mb_per_sec() - 2.0).abs() < 1e-9);
        assert!((t.kops_per_sec() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_zero_elapsed_is_zero_rate() {
        let t = Throughput::new(100, 100, 0);
        assert_eq!(t.mb_per_sec(), 0.0);
        assert_eq!(t.kops_per_sec(), 0.0);
    }
}
