//! Fixed-bucket log2 latency histograms.
//!
//! Every layer of the stack records virtual-nanosecond durations into
//! [`Histogram`]s: 64 power-of-two buckets cover the full `u64` range, so
//! recording is two relaxed atomic adds (bucket + sum) and never allocates.
//! Percentile queries interpolate linearly inside the winning bucket, which
//! is the usual HdrHistogram-style trade: exact counts, bounded relative
//! error on quantiles (at most 2x, the width of a log2 bucket).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: bucket `i` holds values whose bit length is `i`
/// (bucket 0 holds the value zero, bucket 1 holds exactly 1, bucket 2 holds
/// 2..=3, and so on up to bucket 64 for values with the top bit set).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A concurrent fixed-bucket log2 histogram over `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// An owned point-in-time copy of a histogram, used for report snapshots
/// and interval deltas.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

/// The bucket a value lands in: its bit length.
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Lower bound (inclusive) of bucket `i`.
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Upper bound (inclusive) of bucket `i`.
pub fn bucket_ceil(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, or zero when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum() as f64 / count as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`), interpolated linearly inside the
    /// winning log2 bucket. Returns zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// An owned copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

impl HistogramSnapshot {
    /// Total samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample, or zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`), interpolated linearly inside the
    /// winning log2 bucket. Returns zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based, at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = bucket_floor(i);
                let hi = bucket_ceil(i);
                // Linear interpolation inside the winning bucket: treat its
                // `n` samples as evenly spread over [lo, hi] and read off
                // the mid-rank position (the k-th of n samples sits at the
                // (2k-1)/2n point of the span). The old lower-bound form
                // pinned rank 1 to `lo`, understating p99 by up to the full
                // bucket width (2x relative error). u128 keeps the top
                // bucket (span ~ 2^63) from overflowing the product.
                let into = rank - seen; // 1..=n
                let span = (hi - lo) as u128;
                let offset = span * (2 * into as u128 - 1) / (2 * n as u128);
                return lo + offset as u64;
            }
            seen += n;
        }
        bucket_ceil(HISTOGRAM_BUCKETS - 1)
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Per-bucket difference against an earlier snapshot of the same
    /// histogram. Saturates at zero so a reset histogram yields an empty
    /// delta rather than underflowing.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &n)| n.saturating_sub(earlier.buckets.get(i).copied().unwrap_or(0)))
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..64 {
            assert_eq!(bucket_of(bucket_floor(i)), i);
            assert_eq!(bucket_of(bucket_ceil(i)), i);
        }
    }

    #[test]
    fn count_sum_mean_roundtrip() {
        let h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 60);
        assert!((h.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_on_uniform_samples() {
        let h = Histogram::new();
        // 100 samples in distinct buckets 1..=100 collapse into log2
        // buckets; quantiles must stay within a bucket-width (2x) of truth.
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.p50();
        assert!((25..=100).contains(&p50), "p50 = {p50}");
        let p99 = h.p99();
        assert!((64..=127).contains(&p99), "p99 = {p99}");
        assert!(h.p95() <= p99 || h.p95() >= p50, "quantiles ordered");
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::new();
        for v in [1u64, 5, 9, 120, 4000, 4001, 70_000] {
            h.record(v);
        }
        let qs: Vec<u64> = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_quantiles_hit_its_bucket() {
        let h = Histogram::new();
        h.record(1000);
        let (lo, hi) = (bucket_floor(bucket_of(1000)), bucket_ceil(bucket_of(1000)));
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= lo && v <= hi, "q={q} -> {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn quantiles_interpolate_within_bucket() {
        // 512 uniform samples fill bucket 10 ([512, 1023]) exactly, so the
        // interpolated quantile must track the true quantile closely — not
        // collapse to the bucket floor the way lower-bound reporting did.
        let h = Histogram::new();
        for v in 512..=1023u64 {
            h.record(v);
        }
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let truth = 512.0 + 511.0 * q;
            let got = h.quantile(q) as f64;
            assert!(
                (got - truth).abs() <= 2.0,
                "q={q}: got {got}, want ~{truth}"
            );
        }
    }

    #[test]
    fn single_sample_does_not_pin_to_bucket_floor() {
        // The old lower-bound form returned exactly `lo` for every quantile
        // of a one-sample bucket; mid-rank interpolation lands mid-bucket.
        let h = Histogram::new();
        h.record(1000);
        let (lo, hi) = (bucket_floor(bucket_of(1000)), bucket_ceil(bucket_of(1000)));
        let p99 = h.p99();
        assert!(
            p99 > lo && p99 < hi,
            "p99 = {p99} should be inside ({lo}, {hi})"
        );
        assert_eq!(p99, lo + (hi - lo) / 2);
    }

    #[test]
    fn top_bucket_interpolation_does_not_overflow() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        for q in [0.0, 0.5, 1.0] {
            let v = h.quantile(q);
            assert!(v >= bucket_floor(64), "q={q} -> {v}");
        }
        assert!(h.quantile(1.0) >= h.quantile(0.0));
    }

    #[test]
    fn interpolated_quantiles_stay_monotone_across_buckets() {
        // Known mixed distribution spanning several buckets: quantiles must
        // be monotone in q and bracket the recorded values.
        let h = Histogram::new();
        for v in [3u64, 3, 3, 40, 41, 42, 43, 5000, 5001, 900_000] {
            h.record(v);
        }
        let qs: Vec<u64> = (0..=20).map(|i| h.quantile(i as f64 / 20.0)).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
        assert!(
            qs[0] >= 2 && qs[0] <= 3,
            "low end in value's bucket: {}",
            qs[0]
        );
        assert!(
            *qs.last().unwrap() >= 524_288,
            "tail reaches the top sample's bucket"
        );
    }

    #[test]
    fn snapshot_delta_subtracts() {
        let h = Histogram::new();
        h.record(100);
        let early = h.snapshot();
        h.record(100);
        h.record(7);
        let delta = h.snapshot().delta(&early);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 107);
        assert_eq!(delta.buckets[bucket_of(100)], 1);
        assert_eq!(delta.buckets[bucket_of(7)], 1);
    }
}
