//! Inode metadata and extent maps.

use crate::Run;

/// Identifier of a file in the simulated filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InodeId(pub u64);

impl std::fmt::Display for InodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inode#{}", self.0)
    }
}

/// One logically- and physically-contiguous mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First logical block covered.
    pub lstart: u64,
    /// First physical block backing it.
    pub pstart: u64,
    /// Number of blocks.
    pub blocks: u64,
}

impl Extent {
    /// Whether this extent covers logical block `lblock`.
    pub fn contains(&self, lblock: u64) -> bool {
        (self.lstart..self.lstart + self.blocks).contains(&lblock)
    }
}

/// Per-file metadata: size and the extent map, kept sorted by `lstart`.
#[derive(Debug)]
pub struct InodeMeta {
    /// The owning inode.
    pub ino: InodeId,
    /// Logical size in bytes.
    pub size_bytes: u64,
    /// Sorted, non-overlapping extents.
    pub extents: Vec<Extent>,
}

impl InodeMeta {
    /// Fresh empty metadata.
    pub fn new(ino: InodeId) -> Self {
        Self {
            ino,
            size_bytes: 0,
            extents: Vec::new(),
        }
    }

    /// Maps one logical block to the physical run starting there, bounded
    /// by the containing extent. Returns `None` for holes.
    pub fn map_one(&self, lblock: u64) -> Option<Run> {
        let idx = self
            .extents
            .partition_point(|e| e.lstart + e.blocks <= lblock);
        let extent = self.extents.get(idx)?;
        if !extent.contains(lblock) {
            return None;
        }
        let offset = lblock - extent.lstart;
        Some(Run {
            pstart: extent.pstart + offset,
            blocks: extent.blocks - offset,
        })
    }

    /// Inserts an extent, merging with a physically- and logically-adjacent
    /// predecessor when possible.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the extent overlaps an existing mapping; the
    /// allocator only fills holes.
    pub fn insert_extent(&mut self, extent: Extent) {
        debug_assert!(
            (extent.lstart..extent.lstart + extent.blocks).all(|l| self.map_one(l).is_none()),
            "extent overlaps existing mapping"
        );
        let idx = self.extents.partition_point(|e| e.lstart < extent.lstart);
        // Try merging with the previous extent.
        if idx > 0 {
            let prev = &mut self.extents[idx - 1];
            if prev.lstart + prev.blocks == extent.lstart
                && prev.pstart + prev.blocks == extent.pstart
            {
                prev.blocks += extent.blocks;
                // Try merging the grown prev with the next extent.
                if idx < self.extents.len() {
                    let next = self.extents[idx];
                    let prev = self.extents[idx - 1];
                    if prev.lstart + prev.blocks == next.lstart
                        && prev.pstart + prev.blocks == next.pstart
                    {
                        self.extents[idx - 1].blocks += next.blocks;
                        self.extents.remove(idx);
                    }
                }
                return;
            }
        }
        self.extents.insert(idx, extent);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta_with(extents: &[(u64, u64, u64)]) -> InodeMeta {
        let mut meta = InodeMeta::new(InodeId(0));
        for &(l, p, n) in extents {
            meta.insert_extent(Extent {
                lstart: l,
                pstart: p,
                blocks: n,
            });
        }
        meta
    }

    #[test]
    fn map_one_within_extent() {
        let meta = meta_with(&[(0, 100, 10)]);
        let run = meta.map_one(3).unwrap();
        assert_eq!((run.pstart, run.blocks), (103, 7));
    }

    #[test]
    fn map_one_hole_is_none() {
        let meta = meta_with(&[(0, 100, 10), (20, 200, 5)]);
        assert!(meta.map_one(15).is_none());
        assert!(meta.map_one(25).is_none());
        assert_eq!(meta.map_one(20).unwrap().pstart, 200);
    }

    #[test]
    fn adjacent_extents_merge() {
        let meta = meta_with(&[(0, 100, 10), (10, 110, 5)]);
        assert_eq!(meta.extents.len(), 1);
        assert_eq!(meta.extents[0].blocks, 15);
    }

    #[test]
    fn logically_adjacent_but_physically_distant_do_not_merge() {
        let meta = meta_with(&[(0, 100, 10), (10, 500, 5)]);
        assert_eq!(meta.extents.len(), 2);
    }

    #[test]
    fn fill_between_merges_three_ways() {
        // [0,10) and [20,30) exist; filling [10,20) contiguously merges all.
        let meta = meta_with(&[(0, 100, 10), (20, 120, 10), (10, 110, 10)]);
        assert_eq!(meta.extents.len(), 1);
        assert_eq!(meta.extents[0].blocks, 30);
    }

    #[test]
    fn out_of_order_insert_keeps_sorted() {
        let meta = meta_with(&[(20, 500, 5), (0, 100, 5)]);
        assert!(meta.extents.windows(2).all(|w| w[0].lstart < w[1].lstart));
    }

    #[test]
    fn display_inode() {
        assert_eq!(InodeId(7).to_string(), "inode#7");
    }
}
