//! Block allocation policies.

use std::collections::HashMap;

use crate::{FsKind, InodeId};

/// A physically contiguous run of blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// First physical block.
    pub pstart: u64,
    /// Number of blocks.
    pub blocks: u64,
}

/// Extent preallocation unit for the ext4-like policy: 32 MiB.
const EXT_PREALLOC_BLOCKS: u64 = 8192;

/// Block allocator implementing both layout policies.
///
/// * **Ext4Like** reserves a large private region per file the first time
///   the file allocates, then hands out consecutive blocks from that
///   region; files stay physically contiguous regardless of interleaving.
/// * **F2fsLike** appends every allocation to one device-wide log head;
///   a single large allocation is contiguous, but allocations interleaved
///   across files fragment each other.
#[derive(Debug)]
pub struct Allocator {
    kind: FsKind,
    /// Next never-used physical block (the log head / fresh-region pointer).
    frontier: u64,
    /// Ext4-like: per-file reserved region cursor and end.
    reservations: HashMap<InodeId, (u64, u64)>,
    allocated: u64,
}

impl Allocator {
    /// Creates an empty allocator for the given policy.
    pub fn new(kind: FsKind) -> Self {
        Self {
            kind,
            frontier: 0,
            reservations: HashMap::new(),
            allocated: 0,
        }
    }

    /// Allocates `count` physically contiguous blocks for `ino`, returning
    /// the first physical block.
    pub fn allocate(&mut self, ino: InodeId, count: u64) -> u64 {
        self.allocated += count;
        match self.kind {
            FsKind::Ext4Like => {
                let (cursor, end) = self
                    .reservations
                    .get(&ino)
                    .copied()
                    .unwrap_or((self.frontier, self.frontier));
                if cursor + count <= end {
                    self.reservations.insert(ino, (cursor + count, end));
                    return cursor;
                }
                // Reservation exhausted (or first use): carve a fresh region
                // big enough for this allocation plus preallocation slack.
                let region = count.max(EXT_PREALLOC_BLOCKS);
                let start = self.frontier;
                self.frontier += region;
                self.reservations
                    .insert(ino, (start + count, start + region));
                start
            }
            FsKind::F2fsLike => {
                let start = self.frontier;
                self.frontier += count;
                start
            }
        }
    }

    /// Returns `count` blocks to the free pool (accounting only; physical
    /// addresses are not recycled, matching a copy-on-write log).
    pub fn free(&mut self, count: u64) {
        self.allocated = self.allocated.saturating_sub(count);
    }

    /// Total live allocated blocks.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext4_interleaved_allocations_stay_per_file_contiguous() {
        let mut alloc = Allocator::new(FsKind::Ext4Like);
        let a0 = alloc.allocate(InodeId(0), 4);
        let b0 = alloc.allocate(InodeId(1), 4);
        let a1 = alloc.allocate(InodeId(0), 4);
        let b1 = alloc.allocate(InodeId(1), 4);
        assert_eq!(a1, a0 + 4);
        assert_eq!(b1, b0 + 4);
    }

    #[test]
    fn f2fs_interleaved_allocations_interleave() {
        let mut alloc = Allocator::new(FsKind::F2fsLike);
        let a0 = alloc.allocate(InodeId(0), 4);
        let b0 = alloc.allocate(InodeId(1), 4);
        let a1 = alloc.allocate(InodeId(0), 4);
        assert_eq!(b0, a0 + 4);
        assert_eq!(a1, b0 + 4); // not adjacent to a0
    }

    #[test]
    fn ext4_reservation_exhaustion_carves_new_region() {
        let mut alloc = Allocator::new(FsKind::Ext4Like);
        let first = alloc.allocate(InodeId(0), EXT_PREALLOC_BLOCKS);
        let second = alloc.allocate(InodeId(0), 1);
        // New region begins after the exhausted one.
        assert_eq!(second, first + EXT_PREALLOC_BLOCKS);
    }

    #[test]
    fn huge_allocation_is_contiguous_in_both_policies() {
        for kind in [FsKind::Ext4Like, FsKind::F2fsLike] {
            let mut alloc = Allocator::new(kind);
            let start = alloc.allocate(InodeId(0), 100_000);
            let next = alloc.allocate(InodeId(1), 1);
            assert!(next >= start + 100_000);
        }
    }

    #[test]
    fn accounting_tracks_alloc_and_free() {
        let mut alloc = Allocator::new(FsKind::F2fsLike);
        alloc.allocate(InodeId(0), 10);
        alloc.allocate(InodeId(1), 5);
        assert_eq!(alloc.allocated(), 15);
        alloc.free(5);
        assert_eq!(alloc.allocated(), 10);
        alloc.free(100);
        assert_eq!(alloc.allocated(), 0);
    }
}
