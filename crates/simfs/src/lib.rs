//! Simulated filesystem layouts for the CrossPrefetch reproduction.
//!
//! The paper evaluates CrossPrefetch on ext4 (default) and on F2FS
//! (Figure 7d), plus ext4 over remote NVMe-oF (Figure 8a). What differs
//! between filesystems, for prefetching purposes, is the **logical-to-
//! physical block mapping**: ext4's extent allocator keeps each file
//! physically contiguous, while F2FS's log-structured allocator appends all
//! writes to a shared log, so files written concurrently interleave on
//! media. A prefetcher that issues large logically-sequential reads gets
//! large physically-sequential device requests on ext4, but more fragmented
//! runs on F2FS.
//!
//! This crate provides the inode table, a flat hierarchical namespace, and
//! both allocation policies. It is purely a mapping layer: virtual-time
//! charges live in `simos`, and device access lives in `simstore`.
//!
//! # Example
//!
//! ```
//! use simfs::{FileSystem, FsKind};
//!
//! let fs = FileSystem::new(FsKind::Ext4Like);
//! let ino = fs.create("/db/000001.sst")?;
//! fs.allocate(ino, 0, 256); // 1 MiB
//! let runs = fs.map_blocks(ino, 0, 256);
//! assert_eq!(runs.len(), 1, "ext4-like files are contiguous");
//! # Ok::<(), simfs::FsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod inode;
mod namespace;

pub use alloc::{Allocator, Run};
pub use inode::{Extent, InodeId, InodeMeta};
pub use namespace::Namespace;

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, RwLock};

/// Which on-media layout policy the filesystem uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsKind {
    /// Extent-based allocation: per-file contiguous preallocation, like ext4.
    Ext4Like,
    /// Log-structured allocation: all writes append to one device-wide log,
    /// like F2FS. Concurrent writers interleave on media.
    F2fsLike,
}

/// Errors returned by namespace operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The path already names a file.
    AlreadyExists(String),
    /// The path names nothing.
    NotFound(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::AlreadyExists(p) => write!(f, "file already exists: {p}"),
            FsError::NotFound(p) => write!(f, "no such file: {p}"),
        }
    }
}

impl std::error::Error for FsError {}

/// A simulated filesystem: namespace + inode table + block allocator.
///
/// All methods take `&self`; internal state is protected by fine-grained
/// locks so OS worker threads can operate concurrently.
#[derive(Debug)]
pub struct FileSystem {
    kind: FsKind,
    namespace: RwLock<Namespace>,
    inodes: RwLock<Vec<Mutex<InodeMeta>>>,
    allocator: Mutex<Allocator>,
    next_inode: AtomicU64,
}

impl FileSystem {
    /// Creates an empty filesystem with the given layout policy.
    pub fn new(kind: FsKind) -> Self {
        Self {
            kind,
            namespace: RwLock::new(Namespace::new()),
            inodes: RwLock::new(Vec::new()),
            allocator: Mutex::new(Allocator::new(kind)),
            next_inode: AtomicU64::new(0),
        }
    }

    /// The layout policy in effect.
    pub fn kind(&self) -> FsKind {
        self.kind
    }

    /// Creates a new empty file.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] if `path` is taken.
    pub fn create(&self, path: &str) -> Result<InodeId, FsError> {
        let mut ns = self.namespace.write();
        if ns.lookup(path).is_some() {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        let ino = InodeId(self.next_inode.fetch_add(1, Ordering::Relaxed));
        self.inodes.write().push(Mutex::new(InodeMeta::new(ino)));
        ns.insert(path, ino);
        Ok(ino)
    }

    /// Creates a file and preallocates `bytes` of space (like `fallocate`),
    /// so reads of never-written regions map to real device blocks.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] if `path` is taken.
    pub fn create_sized(&self, path: &str, bytes: u64) -> Result<InodeId, FsError> {
        let ino = self.create(path)?;
        let blocks = simstore::blocks_for_bytes(bytes);
        if blocks > 0 {
            self.allocate(ino, 0, blocks);
        }
        self.set_size(ino, bytes);
        Ok(ino)
    }

    /// Resolves a path to its inode.
    pub fn lookup(&self, path: &str) -> Option<InodeId> {
        self.namespace.read().lookup(path)
    }

    /// Removes a path and frees the inode's blocks.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if `path` names nothing.
    pub fn unlink(&self, path: &str) -> Result<InodeId, FsError> {
        let ino = {
            let mut ns = self.namespace.write();
            ns.remove(path)
                .ok_or_else(|| FsError::NotFound(path.to_string()))?
        };
        let inodes = self.inodes.read();
        let mut meta = inodes[ino.0 as usize].lock();
        let freed: u64 = meta.extents.iter().map(|e| e.blocks).sum();
        meta.extents.clear();
        meta.size_bytes = 0;
        self.allocator.lock().free(freed);
        Ok(ino)
    }

    /// Lists all paths under a prefix (e.g. `"/db/"`).
    pub fn list_prefix(&self, prefix: &str) -> Vec<String> {
        self.namespace.read().list_prefix(prefix)
    }

    /// Number of live files.
    pub fn file_count(&self) -> usize {
        self.namespace.read().len()
    }

    /// Current file size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `ino` was never created by this filesystem.
    pub fn size(&self, ino: InodeId) -> u64 {
        self.inodes.read()[ino.0 as usize].lock().size_bytes
    }

    /// Updates the file size (grow only; shrink is done via unlink+create in
    /// this model, matching how the LSM store replaces files).
    pub fn set_size(&self, ino: InodeId, bytes: u64) {
        let inodes = self.inodes.read();
        let mut meta = inodes[ino.0 as usize].lock();
        meta.size_bytes = meta.size_bytes.max(bytes);
    }

    /// Ensures blocks `[lstart, lstart + count)` are allocated, extending
    /// the extent list as needed. Returns the number of newly allocated
    /// blocks.
    pub fn allocate(&self, ino: InodeId, lstart: u64, count: u64) -> u64 {
        if count == 0 {
            return 0;
        }
        let inodes = self.inodes.read();
        let mut meta = inodes[ino.0 as usize].lock();
        let mut newly = 0;
        let mut lblock = lstart;
        let lend = lstart + count;
        while lblock < lend {
            if let Some(run) = meta.map_one(lblock) {
                // Already mapped; skip to the end of this mapped run.
                lblock += run.blocks.min(lend - lblock);
                continue;
            }
            // Find how many consecutive blocks from here are unmapped.
            let mut hole = 1;
            while lblock + hole < lend && meta.map_one(lblock + hole).is_none() {
                hole += 1;
            }
            let pstart = self.allocator.lock().allocate(ino, hole);
            meta.insert_extent(Extent {
                lstart: lblock,
                pstart,
                blocks: hole,
            });
            newly += hole;
            lblock += hole;
        }
        newly
    }

    /// Maps logical blocks `[lstart, lstart + count)` to physically
    /// contiguous runs. Unallocated regions are allocated on the fly (the
    /// write path); use this for both reads and writes — files in the
    /// simulation are created with [`FileSystem::create_sized`] or written
    /// before being read, so read-path allocation only occurs for holes.
    pub fn map_blocks(&self, ino: InodeId, lstart: u64, count: u64) -> Vec<Run> {
        if count == 0 {
            return Vec::new();
        }
        self.allocate(ino, lstart, count);
        let inodes = self.inodes.read();
        let meta = inodes[ino.0 as usize].lock();
        let mut runs: Vec<Run> = Vec::new();
        let mut lblock = lstart;
        let lend = lstart + count;
        while lblock < lend {
            let run = meta
                .map_one(lblock)
                .expect("block allocated above must map");
            let take = run.blocks.min(lend - lblock);
            match runs.last_mut() {
                Some(prev) if prev.pstart + prev.blocks == run.pstart => {
                    prev.blocks += take;
                }
                _ => runs.push(Run {
                    pstart: run.pstart,
                    blocks: take,
                }),
            }
            lblock += take;
        }
        runs
    }

    /// Maps a single logical block to its physical block, allocating if
    /// needed.
    pub fn map_block(&self, ino: InodeId, lblock: u64) -> u64 {
        self.map_blocks(ino, lblock, 1)[0].pstart
    }

    /// Total physical blocks currently allocated across all files.
    pub fn allocated_blocks(&self) -> u64 {
        self.allocator.lock().allocated()
    }

    /// Number of extents backing a file — a fragmentation measure.
    pub fn extent_count(&self, ino: InodeId) -> usize {
        self.inodes.read()[ino.0 as usize].lock().extents.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_lookup_unlink_cycle() {
        let fs = FileSystem::new(FsKind::Ext4Like);
        let ino = fs.create("/a").unwrap();
        assert_eq!(fs.lookup("/a"), Some(ino));
        assert_eq!(fs.unlink("/a").unwrap(), ino);
        assert_eq!(fs.lookup("/a"), None);
        assert_eq!(fs.unlink("/a"), Err(FsError::NotFound("/a".into())));
    }

    #[test]
    fn duplicate_create_fails() {
        let fs = FileSystem::new(FsKind::Ext4Like);
        fs.create("/a").unwrap();
        assert_eq!(fs.create("/a"), Err(FsError::AlreadyExists("/a".into())));
    }

    #[test]
    fn ext4_like_file_is_one_extent() {
        let fs = FileSystem::new(FsKind::Ext4Like);
        let ino = fs.create_sized("/big", 64 << 20).unwrap();
        assert_eq!(fs.extent_count(ino), 1);
        let runs = fs.map_blocks(ino, 0, simstore::blocks_for_bytes(64 << 20));
        assert_eq!(runs.len(), 1);
    }

    #[test]
    fn f2fs_like_interleaved_writers_fragment() {
        let fs = FileSystem::new(FsKind::F2fsLike);
        let a = fs.create("/a").unwrap();
        let b = fs.create("/b").unwrap();
        // Interleave small appends from two files.
        for i in 0..16 {
            fs.allocate(a, i, 1);
            fs.allocate(b, i, 1);
        }
        assert!(fs.extent_count(a) > 1, "log interleaving must fragment");
        // Same pattern on ext4-like stays contiguous per file.
        let fs2 = FileSystem::new(FsKind::Ext4Like);
        let c = fs2.create("/c").unwrap();
        let d = fs2.create("/d").unwrap();
        for i in 0..16 {
            fs2.allocate(c, i, 1);
            fs2.allocate(d, i, 1);
        }
        assert_eq!(fs2.extent_count(c), 1);
        let _ = d;
    }

    #[test]
    fn map_blocks_merges_adjacent_runs() {
        let fs = FileSystem::new(FsKind::Ext4Like);
        let ino = fs.create_sized("/x", 1 << 20).unwrap();
        let runs = fs.map_blocks(ino, 10, 50);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].blocks, 50);
    }

    #[test]
    fn size_grows_monotonically() {
        let fs = FileSystem::new(FsKind::Ext4Like);
        let ino = fs.create("/f").unwrap();
        fs.set_size(ino, 100);
        fs.set_size(ino, 50);
        assert_eq!(fs.size(ino), 100);
    }

    #[test]
    fn unlink_frees_space() {
        let fs = FileSystem::new(FsKind::Ext4Like);
        fs.create_sized("/f", 1 << 20).unwrap();
        let before = fs.allocated_blocks();
        assert!(before > 0);
        fs.unlink("/f").unwrap();
        assert_eq!(fs.allocated_blocks(), 0);
    }

    #[test]
    fn list_prefix_filters() {
        let fs = FileSystem::new(FsKind::Ext4Like);
        fs.create("/db/1.sst").unwrap();
        fs.create("/db/2.sst").unwrap();
        fs.create("/log/wal").unwrap();
        let mut db = fs.list_prefix("/db/");
        db.sort();
        assert_eq!(db, vec!["/db/1.sst".to_string(), "/db/2.sst".to_string()]);
        assert_eq!(fs.file_count(), 3);
    }

    #[test]
    fn distinct_files_get_distinct_physical_blocks() {
        let fs = FileSystem::new(FsKind::Ext4Like);
        let a = fs.create_sized("/a", 1 << 20).unwrap();
        let b = fs.create_sized("/b", 1 << 20).unwrap();
        let ra = fs.map_blocks(a, 0, 256);
        let rb = fs.map_blocks(b, 0, 256);
        let a_range = ra[0].pstart..ra[0].pstart + ra[0].blocks;
        assert!(!a_range.contains(&rb[0].pstart));
    }

    #[test]
    fn hole_allocation_counts_new_blocks_once() {
        let fs = FileSystem::new(FsKind::Ext4Like);
        let ino = fs.create("/f").unwrap();
        assert_eq!(fs.allocate(ino, 0, 10), 10);
        assert_eq!(fs.allocate(ino, 0, 10), 0);
        assert_eq!(fs.allocate(ino, 5, 10), 5);
    }
}
