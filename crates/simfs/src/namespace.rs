//! Flat hierarchical namespace (path → inode).

use std::collections::HashMap;

use crate::InodeId;

/// A flat map from absolute path strings to inodes.
///
/// The simulation does not need directory inodes or permission checks —
/// only create/lookup/unlink/list, which the metadata-intensive Filebench
/// personality exercises at thousands-of-files scale.
#[derive(Debug, Default)]
pub struct Namespace {
    entries: HashMap<String, InodeId>,
}

impl Namespace {
    /// Creates an empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves a path.
    pub fn lookup(&self, path: &str) -> Option<InodeId> {
        self.entries.get(path).copied()
    }

    /// Binds `path` to `ino`, replacing any prior binding.
    pub fn insert(&mut self, path: &str, ino: InodeId) {
        self.entries.insert(path.to_string(), ino);
    }

    /// Unbinds `path`, returning the inode it named.
    pub fn remove(&mut self, path: &str) -> Option<InodeId> {
        self.entries.remove(path)
    }

    /// All paths starting with `prefix`, in arbitrary order.
    pub fn list_prefix(&self, prefix: &str) -> Vec<String> {
        self.entries
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Number of bound paths.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no paths are bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut ns = Namespace::new();
        assert!(ns.is_empty());
        ns.insert("/a/b", InodeId(1));
        assert_eq!(ns.lookup("/a/b"), Some(InodeId(1)));
        assert_eq!(ns.remove("/a/b"), Some(InodeId(1)));
        assert_eq!(ns.lookup("/a/b"), None);
        assert_eq!(ns.remove("/a/b"), None);
    }

    #[test]
    fn insert_replaces() {
        let mut ns = Namespace::new();
        ns.insert("/a", InodeId(1));
        ns.insert("/a", InodeId(2));
        assert_eq!(ns.lookup("/a"), Some(InodeId(2)));
        assert_eq!(ns.len(), 1);
    }

    #[test]
    fn list_prefix_matches_only_prefix() {
        let mut ns = Namespace::new();
        ns.insert("/x/1", InodeId(1));
        ns.insert("/x/2", InodeId(2));
        ns.insert("/y/1", InodeId(3));
        let mut hits = ns.list_prefix("/x/");
        hits.sort();
        assert_eq!(hits, vec!["/x/1", "/x/2"]);
    }
}
