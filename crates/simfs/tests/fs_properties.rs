//! Property tests for the filesystem layer: mapping totality, physical
//! exclusivity across files, and namespace semantics.

use proptest::prelude::*;
use simfs::{FileSystem, FsKind};
use std::collections::HashMap;

proptest! {
    #[test]
    fn mapping_is_total_and_stable(
        kind_f2fs in any::<bool>(),
        allocs in prop::collection::vec((0u64..2, 0u64..2000, 1u64..300), 1..40),
    ) {
        let fs = FileSystem::new(if kind_f2fs { FsKind::F2fsLike } else { FsKind::Ext4Like });
        let files = [fs.create("/a").unwrap(), fs.create("/b").unwrap()];
        for &(which, lstart, count) in &allocs {
            fs.allocate(files[which as usize], lstart, count);
        }
        // Every mapped block must be stable across repeated queries.
        for &(which, lstart, count) in &allocs {
            let first = fs.map_blocks(files[which as usize], lstart, count);
            let second = fs.map_blocks(files[which as usize], lstart, count);
            prop_assert_eq!(first, second);
        }
    }

    #[test]
    fn physical_blocks_are_exclusive_across_files(
        kind_f2fs in any::<bool>(),
        allocs in prop::collection::vec((0u64..3, 0u64..1000, 1u64..200), 1..40),
    ) {
        let fs = FileSystem::new(if kind_f2fs { FsKind::F2fsLike } else { FsKind::Ext4Like });
        let files = [
            fs.create("/x").unwrap(),
            fs.create("/y").unwrap(),
            fs.create("/z").unwrap(),
        ];
        for &(which, lstart, count) in &allocs {
            fs.allocate(files[which as usize], lstart, count);
        }
        // Collect every (physical block -> (file, logical)) mapping; a
        // physical block may appear for at most one (file, logical) pair.
        let mut owners: HashMap<u64, (u64, u64)> = HashMap::new();
        for (fidx, &ino) in files.iter().enumerate() {
            for lblock in 0..1300u64 {
                let runs = {
                    // Only query allocated regions: use allocate-count of 0
                    // by checking size via map of existing extents.
                    let newly = fs.allocate(ino, lblock, 1);
                    if newly > 0 {
                        // This block was a fresh hole; undo is impossible,
                        // but exclusivity must still hold for it.
                    }
                    fs.map_blocks(ino, lblock, 1)
                };
                let pblock = runs[0].pstart;
                if let Some(&(prev_f, prev_l)) = owners.get(&pblock) {
                    prop_assert_eq!(
                        (prev_f, prev_l),
                        (fidx as u64, lblock),
                        "physical block {} double-owned", pblock
                    );
                } else {
                    owners.insert(pblock, (fidx as u64, lblock));
                }
            }
        }
    }

    #[test]
    fn namespace_create_unlink_matches_reference(
        ops in prop::collection::vec((0u8..40, any::<bool>()), 1..80)
    ) {
        let fs = FileSystem::new(FsKind::Ext4Like);
        let mut reference: HashMap<String, bool> = HashMap::new();
        for (name_id, is_create) in ops {
            let path = format!("/p/{name_id}");
            let exists = reference.get(&path).copied().unwrap_or(false);
            if is_create {
                let result = fs.create(&path);
                prop_assert_eq!(result.is_ok(), !exists, "create {}", path);
                reference.insert(path, true);
            } else {
                let result = fs.unlink(&path);
                prop_assert_eq!(result.is_ok(), exists, "unlink {}", path);
                reference.insert(path, false);
            }
        }
        let live = reference.values().filter(|&&v| v).count();
        prop_assert_eq!(fs.file_count(), live);
    }

    #[test]
    fn ext4_files_stay_contiguous_under_interleaving(
        pattern in prop::collection::vec(0u64..4, 8..60)
    ) {
        let fs = FileSystem::new(FsKind::Ext4Like);
        let files: Vec<_> = (0..4)
            .map(|i| fs.create(&format!("/f{i}")).unwrap())
            .collect();
        let mut cursors = [0u64; 4];
        for which in pattern {
            let ino = files[which as usize];
            fs.allocate(ino, cursors[which as usize], 8);
            cursors[which as usize] += 8;
        }
        for (i, &ino) in files.iter().enumerate() {
            if cursors[i] > 0 {
                prop_assert_eq!(
                    fs.map_blocks(ino, 0, cursors[i]).len(),
                    1,
                    "file {} fragmented on ext4-like", i
                );
            }
        }
    }
}
