//! Deterministic fault injection for the device model.
//!
//! Real prefetching stacks live with devices that fail transiently and
//! kernels that throttle unpredictably; CROSS-LIB (§4.4) is explicitly
//! designed to stay correct when the layers beneath it misbehave. A
//! [`FaultPlan`] gives the simulation the same adversary, deterministically:
//! a seeded per-request transient-EIO schedule (separately tunable for
//! demand and prefetch traffic) and periodic latency-spike windows in
//! virtual time.
//!
//! Determinism: every fault decision is a pure function of the plan's seed
//! and a per-device operation counter, drawn through the offline `rand`
//! stand-in — two single-threaded runs with the same seed and workload see
//! the same faults at the same operations. An all-zero plan draws nothing
//! and charges nothing, so it is bit-identical to running with no plan.

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::IoPriority;

/// Error returned by fallible device operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// Transient I/O failure injected by the fault plan; a retry draws a
    /// fresh fault decision and may succeed.
    TransientIo,
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::TransientIo => write!(f, "transient device I/O error (injected)"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// A seeded, deterministic schedule of device misbehaviour.
///
/// # Example
///
/// ```
/// use simstore::{Device, DeviceConfig, FaultPlan, IoPriority};
/// use simclock::{GlobalClock, ThreadClock, NS_PER_MS, NS_PER_US};
/// use std::sync::Arc;
///
/// let mut device = Device::new(DeviceConfig::local_nvme());
/// device.set_fault_plan(
///     FaultPlan::seeded(7)
///         .with_read_eio(0.5)
///         .with_latency_spikes(10 * NS_PER_MS, NS_PER_MS, 500 * NS_PER_US),
/// );
/// let mut clock = ThreadClock::new(Arc::new(GlobalClock::new()));
/// let mut failures = 0;
/// for _ in 0..100 {
///     if device.try_charge_read(&mut clock, 1, IoPriority::Blocking).is_err() {
///         failures += 1;
///     }
/// }
/// assert!(failures > 20 && failures < 80);
/// assert_eq!(device.stats().injected_read_faults.get(), failures);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Probability that one blocking (demand) read request fails with EIO.
    demand_eio: f64,
    /// Probability that one prefetch-class read request fails with EIO.
    prefetch_eio: f64,
    /// Latency spikes repeat every `spike_period_ns` of virtual time...
    spike_period_ns: u64,
    /// ...lasting `spike_duration_ns` from the start of each period...
    spike_duration_ns: u64,
    /// ...adding this much fixed latency to every read request inside the
    /// window.
    spike_extra_ns: u64,
}

impl FaultPlan {
    /// An all-zero plan (no faults, no spikes) with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            demand_eio: 0.0,
            prefetch_eio: 0.0,
            spike_period_ns: 0,
            spike_duration_ns: 0,
            spike_extra_ns: 0,
        }
    }

    /// Sets the transient-EIO probability for *both* traffic classes.
    pub fn with_read_eio(self, probability: f64) -> Self {
        self.with_demand_eio(probability)
            .with_prefetch_eio(probability)
    }

    /// Sets the transient-EIO probability for blocking (demand) reads only.
    pub fn with_demand_eio(mut self, probability: f64) -> Self {
        self.demand_eio = probability.clamp(0.0, 1.0);
        self
    }

    /// Sets the transient-EIO probability for prefetch-class reads only.
    pub fn with_prefetch_eio(mut self, probability: f64) -> Self {
        self.prefetch_eio = probability.clamp(0.0, 1.0);
        self
    }

    /// Installs periodic latency-spike windows: every `period_ns` of
    /// virtual time, read requests issued during the first `duration_ns`
    /// pay `extra_ns` of additional fixed latency (a garbage-collecting
    /// SSD, a congested fabric, a noisy neighbour).
    pub fn with_latency_spikes(mut self, period_ns: u64, duration_ns: u64, extra_ns: u64) -> Self {
        self.spike_period_ns = period_ns;
        self.spike_duration_ns = duration_ns.min(period_ns);
        self.spike_extra_ns = extra_ns;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan can never inject anything (all-zero).
    pub fn is_zero(&self) -> bool {
        self.demand_eio == 0.0
            && self.prefetch_eio == 0.0
            && (self.spike_extra_ns == 0 || self.spike_period_ns == 0)
    }

    /// EIO probability for a request of the given priority.
    pub(crate) fn eio_probability(&self, priority: IoPriority) -> f64 {
        match priority {
            IoPriority::Blocking => self.demand_eio,
            IoPriority::Prefetch => self.prefetch_eio,
        }
    }

    /// Draws the fault decision for operation number `op` at probability
    /// `p` — a pure function of `(seed, op)`, so runs replay identically.
    pub(crate) fn draw_eio(&self, op: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ op.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        rng.gen_bool(p)
    }

    /// Extra read latency imposed at virtual time `now` (0 outside spike
    /// windows or when spikes are not configured).
    pub(crate) fn spike_extra_at(&self, now: u64) -> u64 {
        if self.spike_extra_ns == 0 || self.spike_period_ns == 0 {
            return 0;
        }
        if now % self.spike_period_ns < self.spike_duration_ns {
            self.spike_extra_ns
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_draws_nothing() {
        let plan = FaultPlan::seeded(1);
        assert!(plan.is_zero());
        for op in 0..1000 {
            assert!(!plan.draw_eio(op, plan.eio_probability(IoPriority::Blocking)));
        }
        assert_eq!(plan.spike_extra_at(12345), 0);
    }

    #[test]
    fn draws_are_deterministic_per_seed_and_op() {
        let a = FaultPlan::seeded(9).with_read_eio(0.3);
        let b = FaultPlan::seeded(9).with_read_eio(0.3);
        let decisions_a: Vec<bool> = (0..256).map(|op| a.draw_eio(op, 0.3)).collect();
        let decisions_b: Vec<bool> = (0..256).map(|op| b.draw_eio(op, 0.3)).collect();
        assert_eq!(decisions_a, decisions_b);
        let hits = decisions_a.iter().filter(|&&d| d).count();
        assert!(hits > 30 && hits < 130, "0.3 of 256 draws was {hits}");
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::seeded(1).with_read_eio(0.5);
        let b = FaultPlan::seeded(2).with_read_eio(0.5);
        let va: Vec<bool> = (0..128).map(|op| a.draw_eio(op, 0.5)).collect();
        let vb: Vec<bool> = (0..128).map(|op| b.draw_eio(op, 0.5)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn certain_probabilities_short_circuit() {
        let plan = FaultPlan::seeded(0).with_read_eio(1.0);
        assert!(plan.draw_eio(0, 1.0));
        assert!(!plan.draw_eio(0, 0.0));
    }

    #[test]
    fn spike_windows_are_periodic() {
        let plan = FaultPlan::seeded(0).with_latency_spikes(1000, 100, 50);
        assert_eq!(plan.spike_extra_at(0), 50);
        assert_eq!(plan.spike_extra_at(99), 50);
        assert_eq!(plan.spike_extra_at(100), 0);
        assert_eq!(plan.spike_extra_at(999), 0);
        assert_eq!(plan.spike_extra_at(1000), 50);
        assert_eq!(plan.spike_extra_at(2050), 50);
    }

    #[test]
    fn per_class_probabilities_are_independent() {
        let plan = FaultPlan::seeded(0).with_prefetch_eio(1.0);
        assert_eq!(plan.eio_probability(IoPriority::Blocking), 0.0);
        assert_eq!(plan.eio_probability(IoPriority::Prefetch), 1.0);
        assert!(!plan.is_zero());
    }
}
