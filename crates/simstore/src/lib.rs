//! Simulated block storage for the CrossPrefetch reproduction.
//!
//! The paper evaluates on a 1.6 TB NVMe SSD (1.4 GB/s read, 0.9 GB/s write)
//! and on RDMA-attached remote NVMe-oF storage. This crate models both as
//! bandwidth/latency servers in virtual time over a byte-faithful
//! [`SparseStore`]: what a workload writes is exactly what it later reads,
//! while blocks that were never written return a deterministic synthetic
//! pattern so that terabyte-scale read workloads need no backing RAM.
//!
//! Two request priorities exist, mirroring §4.7 of the paper: `Blocking`
//! (application read/write misses) and `Prefetch`. Prefetch requests are
//! subject to a congestion window — when the device backlog exceeds the
//! window, the prefetching thread stalls until the backlog drains, bounding
//! the delay that prefetch traffic can impose on later blocking I/O.
//!
//! # Example
//!
//! ```
//! use simclock::{GlobalClock, ThreadClock};
//! use simstore::{Device, DeviceConfig, IoPriority};
//! use std::sync::Arc;
//!
//! let device = Device::new(DeviceConfig::local_nvme());
//! let mut clock = ThreadClock::new(Arc::new(GlobalClock::new()));
//!
//! // Write a block, then read it back.
//! device.write_blocks(&mut clock, 7, &[vec![0xAB; simstore::BLOCK_SIZE]], IoPriority::Blocking);
//! let data = device.read_blocks(&mut clock, 7, 1, IoPriority::Blocking);
//! assert!(data[0].iter().all(|&b| b == 0xAB));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod device;
mod fault;
mod store;
mod tiered;

pub use config::DeviceConfig;
pub use device::{Device, DeviceStats, IoPriority};
pub use fault::{DeviceError, FaultPlan};
pub use store::SparseStore;
pub use tiered::{Tier, TierStats, TieredStore, PLACEMENT_WORD_BLOCKS};

/// Bytes per device block (and per OS page): 4 KiB.
pub const BLOCK_SIZE: usize = 4096;
/// log2 of [`BLOCK_SIZE`].
pub const BLOCK_SHIFT: u32 = 12;

/// Converts a byte count to the number of blocks that cover it.
pub fn blocks_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(BLOCK_SIZE as u64)
}

/// Deterministic content for a block that was never written.
///
/// The pattern depends only on the physical block number, so reads are
/// reproducible across runs and verifiable by tests without storing data.
pub fn synthetic_block(pblock: u64) -> Vec<u8> {
    let mut data = vec![0u8; BLOCK_SIZE];
    fill_synthetic(pblock, &mut data);
    data
}

/// Fills `out` (one block) with the synthetic pattern for `pblock`.
pub fn fill_synthetic(pblock: u64, out: &mut [u8]) {
    debug_assert_eq!(out.len(), BLOCK_SIZE);
    // SplitMix64 over (block, word) — cheap, uniform, and reproducible.
    for (word_idx, chunk) in out.chunks_exact_mut(8).enumerate() {
        let mut x = pblock
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(word_idx as u64);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        chunk.copy_from_slice(&x.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_for_bytes_rounds_up() {
        assert_eq!(blocks_for_bytes(0), 0);
        assert_eq!(blocks_for_bytes(1), 1);
        assert_eq!(blocks_for_bytes(4096), 1);
        assert_eq!(blocks_for_bytes(4097), 2);
    }

    #[test]
    fn synthetic_blocks_are_deterministic_and_distinct() {
        assert_eq!(synthetic_block(5), synthetic_block(5));
        assert_ne!(synthetic_block(5), synthetic_block(6));
    }

    #[test]
    fn synthetic_block_is_full_size() {
        assert_eq!(synthetic_block(0).len(), BLOCK_SIZE);
    }
}
