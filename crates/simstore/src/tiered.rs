//! Two-tier device composition with a per-file block placement map.
//!
//! A [`TieredStore`] pairs a fast local device (NVMe) with a slower remote
//! one (NVMe-oF: higher fixed latency, its own bandwidth cap and congestion
//! window) behind the same block-charge interface the OS layer already
//! speaks. Every file's blocks start *remote*; a placement map records, per
//! file and logical block, which tier currently holds it. Promotion copies
//! predicted-hot ranges remote→local (a prefetch-class remote read plus a
//! background local write); demotion under local-tier pressure returns the
//! coldest words to the remote tier, writing locally-modified blocks back
//! first and dropping clean ones for free.
//!
//! Placement bookkeeping is word-granular (64 blocks per word, matching the
//! page-cache reclaim LRU) with three bits per block — placed-local,
//! locally-modified, promoted-but-unread — plus a per-word touch stamp in
//! virtual time driving cold-first demotion. Promotion only flips placement
//! bits *after* both device charges succeed, so an injected remote EIO
//! leaves the map exactly as it was.
//!
//! The store deliberately knows nothing about filesystems: callers resolve
//! logical→physical block numbers (promotion passes physical runs in;
//! demotion takes a resolver closure), keeping this crate at the bottom of
//! the stack.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use simclock::{Counter, ThreadClock};

use crate::{Device, DeviceError, IoPriority};

/// Blocks tracked per placement word (matches the reclaim LRU's
/// pages-per-word granularity).
pub const PLACEMENT_WORD_BLOCKS: u64 = 64;

/// Which tier currently holds a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// The fast local device.
    Local,
    /// The slow remote device (default placement for every block).
    Remote,
}

/// One word of per-block placement state.
#[derive(Debug, Default, Clone, Copy)]
struct TierWord {
    /// Bit set ⇒ the block is placed on the local tier.
    local: u64,
    /// Bit set ⇒ the local copy diverges from the remote one (a write
    /// landed while the block was local); demotion must copy it back.
    modified: u64,
    /// Bit set ⇒ promoted and not read since — demoting such a block counts
    /// as a wasted promotion.
    unread: u64,
    /// Virtual time of the last read touching this word's local blocks.
    touch_ns: u64,
}

#[derive(Debug, Default)]
struct FilePlacement {
    words: HashMap<u64, TierWord>,
}

/// Aggregate tier-movement counters.
#[derive(Debug, Default)]
pub struct TierStats {
    /// Promotion copies that completed (placement flipped).
    pub promotions: Counter,
    /// Blocks newly moved to the local tier by promotion.
    pub promoted_blocks: Counter,
    /// Promotion copies rejected by an injected remote fault.
    pub promotion_faults: Counter,
    /// Promoted blocks demoted or dropped without ever being read locally.
    pub promoted_wasted_blocks: Counter,
    /// Demotion passes (words returned to the remote tier).
    pub demotions: Counter,
    /// Blocks returned to the remote tier.
    pub demoted_blocks: Counter,
    /// Demoted blocks that were locally modified and had to be written back
    /// to the remote device first.
    pub demoted_dirty_blocks: Counter,
}

/// Mask of the bits `[bit0, bit1)` within one word.
fn bit_mask(bit0: u64, bit1: u64) -> u64 {
    debug_assert!(bit0 <= bit1 && bit1 <= PLACEMENT_WORD_BLOCKS);
    if bit1 - bit0 == PLACEMENT_WORD_BLOCKS {
        u64::MAX
    } else {
        ((1u64 << (bit1 - bit0)) - 1) << bit0
    }
}

/// A local+remote device pair behind one block interface.
#[derive(Debug)]
pub struct TieredStore {
    local: Arc<Device>,
    remote: Arc<Device>,
    /// Local-tier capacity in blocks; promotion respects it via
    /// [`TieredStore::ensure_room`].
    local_capacity_blocks: u64,
    /// Blocks currently placed local.
    resident: AtomicU64,
    files: RwLock<HashMap<u64, Arc<Mutex<FilePlacement>>>>,
    stats: TierStats,
}

impl TieredStore {
    /// Composes two devices. Install per-tier fault plans by constructing
    /// each [`Device`] with [`Device::with_fault_plan`] — the tiers draw
    /// from fully independent seeds and probabilities.
    pub fn new(local: Device, remote: Device, local_capacity_blocks: u64) -> Self {
        Self {
            local: Arc::new(local),
            remote: Arc::new(remote),
            local_capacity_blocks,
            resident: AtomicU64::new(0),
            files: RwLock::new(HashMap::new()),
            stats: TierStats::default(),
        }
    }

    /// The fast tier.
    pub fn local(&self) -> &Arc<Device> {
        &self.local
    }

    /// The slow tier.
    pub fn remote(&self) -> &Arc<Device> {
        &self.remote
    }

    /// The device holding blocks of the given tier.
    pub fn device(&self, tier: Tier) -> &Arc<Device> {
        match tier {
            Tier::Local => &self.local,
            Tier::Remote => &self.remote,
        }
    }

    /// Tier-movement counters.
    pub fn stats(&self) -> &TierStats {
        &self.stats
    }

    /// Local-tier capacity in blocks.
    pub fn local_capacity_blocks(&self) -> u64 {
        self.local_capacity_blocks
    }

    /// Blocks currently placed on the local tier.
    pub fn local_resident_blocks(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    fn placement(&self, file: u64) -> Arc<Mutex<FilePlacement>> {
        if let Some(p) = self.files.read().get(&file) {
            return Arc::clone(p);
        }
        let mut files = self.files.write();
        Arc::clone(files.entry(file).or_default())
    }

    /// The tier holding one logical block of `file`.
    pub fn tier_of(&self, file: u64, lblock: u64) -> Tier {
        let placement = self.placement(file);
        let words = &placement.lock().words;
        let word = lblock / PLACEMENT_WORD_BLOCKS;
        let bit = lblock % PLACEMENT_WORD_BLOCKS;
        match words.get(&word) {
            Some(w) if w.local & (1 << bit) != 0 => Tier::Local,
            _ => Tier::Remote,
        }
    }

    /// Splits `[lstart, lstart+count)` into maximal same-tier runs of
    /// `(start, count, tier)`.
    pub fn split_runs(&self, file: u64, lstart: u64, count: u64) -> Vec<(u64, u64, Tier)> {
        let mut runs: Vec<(u64, u64, Tier)> = Vec::new();
        if count == 0 {
            return runs;
        }
        let placement = self.placement(file);
        let guard = placement.lock();
        for lblock in lstart..lstart + count {
            let word = lblock / PLACEMENT_WORD_BLOCKS;
            let bit = lblock % PLACEMENT_WORD_BLOCKS;
            let tier = match guard.words.get(&word) {
                Some(w) if w.local & (1 << bit) != 0 => Tier::Local,
                _ => Tier::Remote,
            };
            match runs.last_mut() {
                Some((s, c, t)) if *t == tier && *s + *c == lblock => *c += 1,
                _ => runs.push((lblock, 1, tier)),
            }
        }
        runs
    }

    /// Sub-ranges of `[lstart, lstart+count)` still placed remote — the
    /// promotion work list.
    pub fn remote_runs(&self, file: u64, lstart: u64, count: u64) -> Vec<(u64, u64)> {
        self.split_runs(file, lstart, count)
            .into_iter()
            .filter(|&(_, _, t)| t == Tier::Remote)
            .map(|(s, c, _)| (s, c))
            .collect()
    }

    /// Records a read of the range: stamps the touch clock on words with
    /// local blocks and clears their promoted-unread bits (the promotion
    /// paid off).
    pub fn note_read(&self, file: u64, lstart: u64, count: u64, now: u64) {
        if count == 0 {
            return;
        }
        let placement = self.placement(file);
        let mut guard = placement.lock();
        let mut lblock = lstart;
        while lblock < lstart + count {
            let word = lblock / PLACEMENT_WORD_BLOCKS;
            let bit0 = lblock % PLACEMENT_WORD_BLOCKS;
            let bit1 = (bit0 + (lstart + count - lblock)).min(PLACEMENT_WORD_BLOCKS);
            if let Some(w) = guard.words.get_mut(&word) {
                let mask = bit_mask(bit0, bit1);
                if w.local & mask != 0 {
                    w.touch_ns = w.touch_ns.max(now);
                    w.unread &= !mask;
                }
            }
            lblock += bit1 - bit0;
        }
    }

    /// Records a write to one logical block and returns the tier the bytes
    /// belong on. A local-placed block is marked locally-modified (demotion
    /// must copy it back) and counts as touched.
    pub fn note_block_written(&self, file: u64, lblock: u64, now: u64) -> Tier {
        let placement = self.placement(file);
        let mut guard = placement.lock();
        let word = lblock / PLACEMENT_WORD_BLOCKS;
        let bit = lblock % PLACEMENT_WORD_BLOCKS;
        match guard.words.get_mut(&word) {
            Some(w) if w.local & (1 << bit) != 0 => {
                w.modified |= 1 << bit;
                w.unread &= !(1 << bit);
                w.touch_ns = w.touch_ns.max(now);
                Tier::Local
            }
            _ => Tier::Remote,
        }
    }

    /// Promotes one wholly-remote logical run (from
    /// [`TieredStore::remote_runs`]) to the local tier: charges a
    /// prefetch-class read on the remote device (fallible — the remote
    /// tier's fault plan draws here), copies any explicitly-written content
    /// across, charges a background local write, and only then flips the
    /// placement bits. On `Err` the placement map is untouched.
    ///
    /// `phys_runs` are the physical `(pstart, blocks)` extents covering the
    /// run, in order; their lengths must sum to `count`.
    pub fn try_promote(
        &self,
        clock: &mut ThreadClock,
        file: u64,
        lstart: u64,
        count: u64,
        phys_runs: &[(u64, u64)],
    ) -> Result<u64, DeviceError> {
        if count == 0 {
            return Ok(0);
        }
        debug_assert_eq!(phys_runs.iter().map(|r| r.1).sum::<u64>(), count);
        let lens: Vec<u64> = phys_runs.iter().map(|r| r.1).collect();
        if let Err(err) = self
            .remote
            .try_charge_read_vectored(clock, &lens, IoPriority::Prefetch)
        {
            self.stats.promotion_faults.incr();
            return Err(err);
        }
        // Move real bytes: synthetic blocks read identically on both
        // devices, so only explicitly-written content needs copying.
        for &(pstart, blocks) in phys_runs {
            for pblock in pstart..pstart + blocks {
                if let Some(data) = self.remote.store().get_block(pblock) {
                    self.local.store().write_block(pblock, &data);
                }
            }
        }
        self.local.charge_write(clock, count, IoPriority::Prefetch);

        let now = clock.now();
        let placement = self.placement(file);
        let mut guard = placement.lock();
        let mut newly = 0u64;
        let mut lblock = lstart;
        while lblock < lstart + count {
            let word = lblock / PLACEMENT_WORD_BLOCKS;
            let bit0 = lblock % PLACEMENT_WORD_BLOCKS;
            let bit1 = (bit0 + (lstart + count - lblock)).min(PLACEMENT_WORD_BLOCKS);
            let mask = bit_mask(bit0, bit1);
            let w = guard.words.entry(word).or_default();
            let fresh = mask & !w.local;
            newly += fresh.count_ones() as u64;
            w.local |= mask;
            w.unread |= fresh;
            w.modified &= !fresh;
            w.touch_ns = w.touch_ns.max(now);
            lblock += bit1 - bit0;
        }
        drop(guard);
        self.resident.fetch_add(newly, Ordering::Relaxed);
        self.stats.promotions.incr();
        self.stats.promoted_blocks.add(newly);
        Ok(newly)
    }

    /// Makes room for `want` more local blocks, demoting the coldest words
    /// if needed. Returns `false` when the local tier cannot fit `want`
    /// blocks even after demotion. Demotion charges (remote write-back of
    /// modified blocks) land on `clock` at background priority; callers use
    /// a detached clock.
    pub fn ensure_room(
        &self,
        clock: &mut ThreadClock,
        want: u64,
        map_block: &dyn Fn(u64, u64) -> u64,
    ) -> bool {
        if want > self.local_capacity_blocks {
            return false;
        }
        let resident = self.resident.load(Ordering::Relaxed);
        let need = (resident + want).saturating_sub(self.local_capacity_blocks);
        if need == 0 {
            return true;
        }
        self.demote_cold(clock, need, map_block) >= need
    }

    /// Demotes the coldest local words until at least `target` blocks have
    /// returned to the remote tier (or no local blocks remain). Returns the
    /// number of blocks demoted.
    pub fn demote_cold(
        &self,
        clock: &mut ThreadClock,
        target: u64,
        map_block: &dyn Fn(u64, u64) -> u64,
    ) -> u64 {
        let snapshot: Vec<(u64, Arc<Mutex<FilePlacement>>)> = self
            .files
            .read()
            .iter()
            .map(|(&file, p)| (file, Arc::clone(p)))
            .collect();
        let mut victims: Vec<(u64, u64, u64)> = Vec::new(); // (touch, file, word)
        for (file, placement) in &snapshot {
            let guard = placement.lock();
            for (&word, w) in &guard.words {
                if w.local != 0 {
                    victims.push((w.touch_ns, *file, word));
                }
            }
        }
        victims.sort_unstable();
        let mut freed = 0u64;
        for (_, file, word) in victims {
            if freed >= target {
                break;
            }
            let placement = self.placement(file);
            freed += self.demote_word(clock, file, &placement, word, map_block);
        }
        freed
    }

    /// Demotes every local block of one word. Modified blocks are copied
    /// back and charged as one background remote write; clean blocks drop
    /// for free. Returns blocks demoted.
    fn demote_word(
        &self,
        clock: &mut ThreadClock,
        file: u64,
        placement: &Arc<Mutex<FilePlacement>>,
        word: u64,
        map_block: &dyn Fn(u64, u64) -> u64,
    ) -> u64 {
        let (local, modified, unread) = {
            let mut guard = placement.lock();
            let Some(w) = guard.words.get_mut(&word) else {
                return 0;
            };
            let snap = (w.local, w.modified & w.local, w.unread & w.local);
            w.local = 0;
            w.modified = 0;
            w.unread = 0;
            snap
        };
        let demoted = local.count_ones() as u64;
        if demoted == 0 {
            return 0;
        }
        let mut dirty = 0u64;
        for bit in 0..PLACEMENT_WORD_BLOCKS {
            if local & (1 << bit) == 0 {
                continue;
            }
            let pblock = map_block(file, word * PLACEMENT_WORD_BLOCKS + bit);
            if modified & (1 << bit) != 0 {
                if let Some(data) = self.local.store().get_block(pblock) {
                    self.remote.store().write_block(pblock, &data);
                }
                dirty += 1;
            }
            self.local.store().discard(pblock);
        }
        if dirty > 0 {
            self.remote.charge_write(clock, dirty, IoPriority::Prefetch);
        }
        self.resident.fetch_sub(demoted, Ordering::Relaxed);
        self.stats.demotions.incr();
        self.stats.demoted_blocks.add(demoted);
        self.stats.demoted_dirty_blocks.add(dirty);
        self.stats
            .promoted_wasted_blocks
            .add(unread.count_ones() as u64);
        demoted
    }

    /// Forgets a file's placement (unlink): local blocks come off the
    /// resident count, promoted-but-unread blocks settle as wasted, and
    /// local content is discarded. No device time is charged — freeing
    /// blocks writes nothing.
    pub fn forget_file(&self, file: u64, map_block: &dyn Fn(u64, u64) -> u64) {
        let Some(placement) = self.files.write().remove(&file) else {
            return;
        };
        let guard = placement.lock();
        let mut resident = 0u64;
        let mut wasted = 0u64;
        for (&word, w) in &guard.words {
            resident += w.local.count_ones() as u64;
            wasted += (w.unread & w.local).count_ones() as u64;
            for bit in 0..PLACEMENT_WORD_BLOCKS {
                if w.local & (1 << bit) != 0 {
                    self.local
                        .store()
                        .discard(map_block(file, word * PLACEMENT_WORD_BLOCKS + bit));
                }
            }
        }
        self.resident.fetch_sub(resident, Ordering::Relaxed);
        self.stats.promoted_wasted_blocks.add(wasted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceConfig, FaultPlan, BLOCK_SIZE};
    use simclock::GlobalClock;

    fn clock() -> ThreadClock {
        ThreadClock::new(Arc::new(GlobalClock::new()))
    }

    fn tiered(capacity: u64) -> TieredStore {
        TieredStore::new(
            Device::new(DeviceConfig::local_nvme()),
            Device::new(DeviceConfig::remote_nvmeof()),
            capacity,
        )
    }

    fn identity_map(_file: u64, lblock: u64) -> u64 {
        lblock
    }

    #[test]
    fn placement_defaults_to_remote() {
        let t = tiered(1024);
        assert_eq!(t.tier_of(1, 0), Tier::Remote);
        assert_eq!(t.split_runs(1, 0, 10), vec![(0, 10, Tier::Remote)]);
        assert_eq!(t.local_resident_blocks(), 0);
    }

    #[test]
    fn promotion_flips_placement_and_splits_runs() {
        let t = tiered(1024);
        let mut c = clock();
        let n = t.try_promote(&mut c, 1, 8, 8, &[(100, 8)]).unwrap();
        assert_eq!(n, 8);
        assert_eq!(t.local_resident_blocks(), 8);
        assert_eq!(
            t.split_runs(1, 0, 24),
            vec![
                (0, 8, Tier::Remote),
                (8, 8, Tier::Local),
                (16, 8, Tier::Remote)
            ]
        );
        assert_eq!(t.remote_runs(1, 0, 24), vec![(0, 8), (16, 8)]);
        // Both devices were charged: a remote read and a local write.
        assert_eq!(t.remote().stats().read_bytes.get(), 8 * BLOCK_SIZE as u64);
        assert_eq!(t.local().stats().write_bytes.get(), 8 * BLOCK_SIZE as u64);
    }

    #[test]
    fn promotion_copies_written_content() {
        let t = tiered(1024);
        let mut c = clock();
        let payload = vec![0xCDu8; BLOCK_SIZE];
        t.remote().store().write_block(5, &payload);
        t.try_promote(&mut c, 1, 5, 1, &[(5, 1)]).unwrap();
        assert_eq!(t.local().store().read_block_vec(5), payload);
    }

    #[test]
    fn remote_eio_leaves_placement_untouched() {
        let t = TieredStore::new(
            Device::new(DeviceConfig::local_nvme()),
            Device::with_fault_plan(
                DeviceConfig::remote_nvmeof(),
                FaultPlan::seeded(0).with_prefetch_eio(1.0),
            ),
            1024,
        );
        let mut c = clock();
        let err = t.try_promote(&mut c, 1, 0, 16, &[(0, 16)]).unwrap_err();
        assert_eq!(err, DeviceError::TransientIo);
        assert_eq!(t.local_resident_blocks(), 0);
        assert_eq!(t.split_runs(1, 0, 16), vec![(0, 16, Tier::Remote)]);
        assert_eq!(t.stats().promotion_faults.get(), 1);
        assert_eq!(t.local().stats().write_bytes.get(), 0);
    }

    #[test]
    fn demotion_prefers_cold_words_and_counts_unread_as_wasted() {
        let t = tiered(1024);
        let mut c = clock();
        t.try_promote(&mut c, 1, 0, 64, &[(0, 64)]).unwrap();
        t.try_promote(&mut c, 1, 64, 64, &[(64, 64)]).unwrap();
        // Touch the second word much later: the first word is colder.
        t.note_read(1, 64, 64, 1_000_000_000);
        let freed = t.demote_cold(&mut c, 64, &identity_map);
        assert_eq!(freed, 64);
        assert_eq!(t.tier_of(1, 0), Tier::Remote);
        assert_eq!(t.tier_of(1, 64), Tier::Local);
        // Word 0 was never read after promotion: all 64 wasted. Word 1's
        // unread bits were cleared by the read.
        assert_eq!(t.stats().promoted_wasted_blocks.get(), 64);
    }

    #[test]
    fn dirty_demotion_writes_back_to_remote() {
        let t = tiered(1024);
        let mut c = clock();
        t.try_promote(&mut c, 1, 0, 4, &[(0, 4)]).unwrap();
        assert_eq!(t.note_block_written(1, 2, 10), Tier::Local);
        let payload = vec![0x77u8; BLOCK_SIZE];
        t.local().store().write_block(2, &payload);
        let before = t.remote().stats().write_bytes.get();
        let freed = t.demote_cold(&mut c, 4, &identity_map);
        assert_eq!(freed, 4);
        assert_eq!(t.stats().demoted_dirty_blocks.get(), 1);
        assert_eq!(
            t.remote().stats().write_bytes.get() - before,
            BLOCK_SIZE as u64
        );
        // The modified content survived the round trip to the remote tier.
        assert_eq!(t.remote().store().read_block_vec(2), payload);
        assert_eq!(t.local().store().get_block(2), None);
    }

    #[test]
    fn ensure_room_demotes_until_capacity() {
        let t = tiered(96);
        let mut c = clock();
        t.try_promote(&mut c, 1, 0, 64, &[(0, 64)]).unwrap();
        assert!(t.ensure_room(&mut c, 64, &identity_map));
        assert!(t.local_resident_blocks() + 64 <= 96);
        // Asking for more than the whole tier can never fit.
        assert!(!t.ensure_room(&mut c, 97, &identity_map));
    }

    #[test]
    fn writes_to_remote_blocks_stay_remote() {
        let t = tiered(1024);
        assert_eq!(t.note_block_written(7, 3, 5), Tier::Remote);
        assert_eq!(t.tier_of(7, 3), Tier::Remote);
    }

    #[test]
    fn forget_file_releases_residency_and_counts_waste() {
        let t = tiered(1024);
        let mut c = clock();
        t.try_promote(&mut c, 9, 0, 32, &[(0, 32)]).unwrap();
        t.note_read(9, 0, 16, 50);
        t.forget_file(9, &identity_map);
        assert_eq!(t.local_resident_blocks(), 0);
        assert_eq!(t.stats().promoted_wasted_blocks.get(), 16);
        assert_eq!(t.tier_of(9, 0), Tier::Remote);
    }
}
