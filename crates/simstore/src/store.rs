//! Byte-faithful sparse block content store.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::{fill_synthetic, BLOCK_SIZE};

const SHARD_COUNT: usize = 64;

/// Sparse, sharded map from physical block number to block content.
///
/// Blocks that were never written read back as the deterministic
/// [`synthetic_block`](crate::synthetic_block) pattern, so read-only
/// workloads over very large files consume no memory here. Written blocks
/// are stored exactly, so the key-value store and compression workloads see
/// correct round-trip data.
#[derive(Debug)]
pub struct SparseStore {
    shards: Vec<Mutex<HashMap<u64, Box<[u8]>>>>,
}

impl SparseStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, pblock: u64) -> &Mutex<HashMap<u64, Box<[u8]>>> {
        // Multiply-shift hash: adjacent blocks land on different shards.
        let h = pblock.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h as usize) % SHARD_COUNT]
    }

    /// Reads one block into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not exactly [`BLOCK_SIZE`] bytes.
    pub fn read_block(&self, pblock: u64, out: &mut [u8]) {
        assert_eq!(out.len(), BLOCK_SIZE, "read buffer must be one block");
        let shard = self.shard(pblock).lock();
        match shard.get(&pblock) {
            Some(data) => out.copy_from_slice(data),
            None => fill_synthetic(pblock, out),
        }
    }

    /// Reads one block, allocating.
    pub fn read_block_vec(&self, pblock: u64) -> Vec<u8> {
        let mut out = vec![0u8; BLOCK_SIZE];
        self.read_block(pblock, &mut out);
        out
    }

    /// Overwrites one block.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly [`BLOCK_SIZE`] bytes.
    pub fn write_block(&self, pblock: u64, data: &[u8]) {
        assert_eq!(data.len(), BLOCK_SIZE, "write buffer must be one block");
        let mut shard = self.shard(pblock).lock();
        shard.insert(pblock, data.into());
    }

    /// Writes a partial block at `offset` within the block, preserving the
    /// rest of the block's current content.
    ///
    /// # Panics
    ///
    /// Panics if `offset + data.len()` exceeds the block.
    pub fn write_partial(&self, pblock: u64, offset: usize, data: &[u8]) {
        assert!(
            offset + data.len() <= BLOCK_SIZE,
            "partial write out of block bounds: offset {offset} + len {}",
            data.len()
        );
        let mut shard = self.shard(pblock).lock();
        let entry = shard.entry(pblock).or_insert_with(|| {
            let mut fresh = vec![0u8; BLOCK_SIZE];
            fill_synthetic(pblock, &mut fresh);
            fresh.into_boxed_slice()
        });
        entry[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Discards stored content for a block (reads revert to synthetic).
    pub fn discard(&self, pblock: u64) {
        self.shard(pblock).lock().remove(&pblock);
    }

    /// Returns the explicitly stored content of a block, if any. Blocks
    /// that would read back synthetic return `None` — cross-tier copies
    /// use this to move only real data (the synthetic pattern is identical
    /// on every device).
    pub fn get_block(&self, pblock: u64) -> Option<Vec<u8>> {
        self.shard(pblock)
            .lock()
            .get(&pblock)
            .map(|data| data.to_vec())
    }

    /// Number of blocks with explicitly stored content.
    pub fn resident_blocks(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

impl Default for SparseStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic_block;

    #[test]
    fn unwritten_block_reads_synthetic() {
        let store = SparseStore::new();
        assert_eq!(store.read_block_vec(42), synthetic_block(42));
        assert_eq!(store.resident_blocks(), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let store = SparseStore::new();
        let data = vec![7u8; BLOCK_SIZE];
        store.write_block(3, &data);
        assert_eq!(store.read_block_vec(3), data);
        assert_eq!(store.resident_blocks(), 1);
    }

    #[test]
    fn partial_write_preserves_rest_of_block() {
        let store = SparseStore::new();
        store.write_partial(9, 100, b"hello");
        let block = store.read_block_vec(9);
        assert_eq!(&block[100..105], b"hello");
        // Rest of the block is still the synthetic pattern.
        let synth = synthetic_block(9);
        assert_eq!(&block[..100], &synth[..100]);
        assert_eq!(&block[105..], &synth[105..]);
    }

    #[test]
    fn discard_reverts_to_synthetic() {
        let store = SparseStore::new();
        store.write_block(5, &vec![1u8; BLOCK_SIZE]);
        store.discard(5);
        assert_eq!(store.read_block_vec(5), synthetic_block(5));
    }

    #[test]
    #[should_panic(expected = "one block")]
    fn read_rejects_short_buffer() {
        let store = SparseStore::new();
        let mut short = vec![0u8; 16];
        store.read_block(0, &mut short);
    }

    #[test]
    #[should_panic(expected = "out of block bounds")]
    fn partial_write_rejects_overflow() {
        let store = SparseStore::new();
        store.write_partial(0, BLOCK_SIZE - 2, b"xyz");
    }

    #[test]
    fn concurrent_writers_to_distinct_blocks() {
        use std::sync::Arc;
        let store = Arc::new(SparseStore::new());
        crossbeam::scope(|scope| {
            for thread_id in 0..8u64 {
                let store = Arc::clone(&store);
                scope.spawn(move |_| {
                    for i in 0..64u64 {
                        let block = thread_id * 64 + i;
                        store.write_block(block, &vec![thread_id as u8; BLOCK_SIZE]);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(store.resident_blocks(), 8 * 64);
        for thread_id in 0..8u64 {
            let block = store.read_block_vec(thread_id * 64);
            assert!(block.iter().all(|&b| b == thread_id as u8));
        }
    }
}
