//! The device model: bandwidth/latency servers plus content.

use std::sync::atomic::{AtomicU64, Ordering};

use simclock::{transfer_ns, Counter, FcfsResource, ThreadClock};

use crate::{DeviceConfig, DeviceError, FaultPlan, SparseStore, BLOCK_SIZE};

/// Scheduling class of a device request (§4.7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoPriority {
    /// Application-visible I/O: demand read misses and writeback the app
    /// is waiting on. Never throttled.
    Blocking,
    /// Readahead / `readahead_info` traffic. Subject to the congestion
    /// window so it cannot pile unbounded backlog in front of blocking I/O.
    Prefetch,
}

/// Aggregate device counters.
#[derive(Debug, Default)]
pub struct DeviceStats {
    /// Read requests issued, by count.
    pub read_requests: Counter,
    /// Write requests issued, by count.
    pub write_requests: Counter,
    /// Bytes read from media.
    pub read_bytes: Counter,
    /// Bytes written to media.
    pub write_bytes: Counter,
    /// Read requests carrying prefetch priority.
    pub prefetch_requests: Counter,
    /// Prefetch requests that stalled on the congestion window.
    pub prefetch_throttled: Counter,
    /// Read requests failed with a transient EIO by the fault plan.
    pub injected_read_faults: Counter,
    /// Vectored read submissions (batched prefetch), by count.
    pub vectored_submissions: Counter,
    /// Read requests that landed inside a latency-spike window.
    pub latency_spike_requests: Counter,
    /// Write requests carrying background (write-back / demotion) priority.
    pub writeback_requests: Counter,
    /// Background writes that stalled on the write congestion window.
    pub writeback_throttled: Counter,
}

/// A simulated block device.
///
/// Reads and writes occupy separate bandwidth servers (NVMe read and write
/// paths are largely independent), pay a fixed per-request latency that does
/// *not* occupy the server (deep queues overlap flash access latency across
/// threads), and move real bytes through the [`SparseStore`].
///
/// Large transfers are split at [`DeviceConfig::max_request_bytes`] — the
/// 2 MiB cap Linux's block layer applies — and the splits pipeline on the
/// bandwidth server, so a big sequential prefetch pays the fixed latency
/// roughly once while random 4 KiB reads pay it on every request. That
/// asymmetry is exactly why prefetching wins on this hardware.
#[derive(Debug)]
pub struct Device {
    config: DeviceConfig,
    /// Total read-bandwidth horizon: every read request (both classes)
    /// occupies it, conserving device capacity.
    read_server: FcfsResource,
    /// Blocking-only horizon: demand reads queue only behind other demand
    /// reads — prefetch backlog cannot delay them (NVMe queues serve
    /// demand I/O with priority alongside background streams).
    read_blocking: FcfsResource,
    /// Total write-bandwidth horizon: every write request (both classes)
    /// occupies it, conserving device capacity.
    write_server: FcfsResource,
    /// Blocking-only write horizon: demand writes queue only behind other
    /// demand writes — background write-back / demotion backlog cannot
    /// delay them (mirror of the read-side dual horizon).
    write_blocking: FcfsResource,
    store: SparseStore,
    stats: DeviceStats,
    /// Optional deterministic misbehaviour schedule; `None` and an all-zero
    /// plan are behaviourally identical (pay-nothing when disabled).
    faults: Option<FaultPlan>,
    /// Operation counter feeding the fault plan's per-op draws. Only
    /// advanced for requests whose traffic class has a nonzero EIO
    /// probability, so fault-free runs never touch it.
    fault_ops: AtomicU64,
}

impl Device {
    /// Creates a device with the given performance model.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`DeviceConfig::validate`].
    pub fn new(config: DeviceConfig) -> Self {
        config.validate();
        Self {
            config,
            read_server: FcfsResource::new("device-read"),
            read_blocking: FcfsResource::new("device-read-blocking"),
            write_server: FcfsResource::new("device-write"),
            write_blocking: FcfsResource::new("device-write-blocking"),
            store: SparseStore::new(),
            stats: DeviceStats::default(),
            faults: None,
            fault_ops: AtomicU64::new(0),
        }
    }

    /// Creates a device with the given performance model and fault plan.
    pub fn with_fault_plan(config: DeviceConfig, plan: FaultPlan) -> Self {
        let mut device = Self::new(config);
        device.faults = Some(plan);
        device
    }

    /// Installs (or replaces) the fault plan on an existing device.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// The fault plan in effect, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The performance model in effect.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Direct access to stored content (used by filesystem formatting).
    pub fn store(&self) -> &SparseStore {
        &self.store
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Reads `count` physically-contiguous blocks starting at `pblock`,
    /// charging virtual time to `clock` and returning the block contents.
    pub fn read_blocks(
        &self,
        clock: &mut ThreadClock,
        pblock: u64,
        count: u64,
        priority: IoPriority,
    ) -> Vec<Vec<u8>> {
        if count == 0 {
            return Vec::new();
        }
        self.charge_read(clock, count, priority);
        (pblock..pblock + count)
            .map(|b| self.store.read_block_vec(b))
            .collect()
    }

    /// Fallible variant of [`Device::charge_read`]: consults the fault plan
    /// before charging. On an injected fault the request pays its fixed
    /// round-trip latency (the error still travels the wire) but no
    /// bandwidth, and nothing is transferred. Retrying draws a fresh
    /// per-op fault decision. Without a fault plan this is exactly
    /// `charge_read`.
    pub fn try_charge_read(
        &self,
        clock: &mut ThreadClock,
        count: u64,
        priority: IoPriority,
    ) -> Result<(), DeviceError> {
        if count > 0 {
            if let Some(plan) = &self.faults {
                let p = plan.eio_probability(priority);
                if p > 0.0 {
                    let op = self.fault_ops.fetch_add(1, Ordering::Relaxed);
                    if plan.draw_eio(op, p) {
                        clock.advance(self.config.read_request_latency_ns());
                        self.stats.injected_read_faults.incr();
                        return Err(DeviceError::TransientIo);
                    }
                }
            }
        }
        self.charge_read(clock, count, priority);
        Ok(())
    }

    /// Vectored variant of [`Device::try_charge_read`]: charges a batch of
    /// physically-discontiguous runs (each `runs[i]` contiguous blocks) as
    /// one submission. The fixed per-request latency is paid once across
    /// the whole vector — the runs pipeline through the device's deep
    /// queue exactly like the splits of one large transfer — the prefetch
    /// congestion window is consulted once, and the fault plan draws a
    /// single per-submission decision: an injected fault rejects the whole
    /// vector before any bandwidth is charged. Bandwidth and
    /// `read_requests` are still charged per split, so a vectored
    /// submission moves the same bytes as the equivalent sequence of
    /// [`Device::try_charge_read`] calls and saves only the repeated fixed
    /// latencies and congestion checks.
    pub fn try_charge_read_vectored(
        &self,
        clock: &mut ThreadClock,
        runs: &[u64],
        priority: IoPriority,
    ) -> Result<(), DeviceError> {
        let total: u64 = runs.iter().sum();
        if total == 0 {
            return Ok(());
        }
        if let Some(plan) = &self.faults {
            let p = plan.eio_probability(priority);
            if p > 0.0 {
                let op = self.fault_ops.fetch_add(1, Ordering::Relaxed);
                if plan.draw_eio(op, p) {
                    clock.advance(self.config.read_request_latency_ns());
                    self.stats.injected_read_faults.incr();
                    return Err(DeviceError::TransientIo);
                }
            }
        }
        self.stats.vectored_submissions.incr();
        let latency = self.config.read_request_latency_ns() + self.spike_extra(clock.now());
        if priority == IoPriority::Prefetch {
            self.stats.prefetch_requests.incr();
            let backlog = self
                .read_server
                .clear_time(clock.now())
                .saturating_sub(clock.now());
            if backlog > self.config.prefetch_congestion_ns {
                self.stats.prefetch_throttled.incr();
                clock.advance_to(
                    self.read_server
                        .clear_time(clock.now())
                        .saturating_sub(self.config.prefetch_congestion_ns),
                );
            }
        }
        let mut completion = clock.now();
        let mut first = true;
        for &count in runs {
            let mut remaining = count * BLOCK_SIZE as u64;
            while remaining > 0 {
                let chunk = remaining.min(self.config.max_request_bytes);
                let service = transfer_ns(chunk, self.config.read_bw);
                let access = match priority {
                    IoPriority::Blocking => {
                        let access = self.read_blocking.access(clock.now(), service);
                        self.read_server.access(access.start_ns, service);
                        access
                    }
                    IoPriority::Prefetch => self.read_server.access(clock.now(), service),
                };
                let lat = if first { latency } else { 0 };
                completion = completion.max(access.end_ns + lat);
                self.stats.read_requests.incr();
                remaining -= chunk;
                first = false;
            }
        }
        self.stats.read_bytes.add(total * BLOCK_SIZE as u64);
        clock.advance_to(completion);
        Ok(())
    }

    /// Extra fixed latency from the fault plan's spike windows at `now`.
    fn spike_extra(&self, now: u64) -> u64 {
        let extra = self
            .faults
            .as_ref()
            .map_or(0, |plan| plan.spike_extra_at(now));
        if extra > 0 {
            self.stats.latency_spike_requests.incr();
        }
        extra
    }

    /// Charges the virtual-time cost of reading `count` contiguous blocks
    /// without materializing content (callers that track presence only).
    pub fn charge_read(&self, clock: &mut ThreadClock, count: u64, priority: IoPriority) {
        let bytes = count * BLOCK_SIZE as u64;
        let spike = if bytes > 0 {
            self.spike_extra(clock.now())
        } else {
            0
        };
        let latency = self.config.read_request_latency_ns() + spike;

        if priority == IoPriority::Prefetch {
            self.stats.prefetch_requests.incr();
            // Congestion control: stall the prefetcher while the contiguous
            // busy stretch ahead of it exceeds the window.
            let backlog = self
                .read_server
                .clear_time(clock.now())
                .saturating_sub(clock.now());
            if backlog > self.config.prefetch_congestion_ns {
                self.stats.prefetch_throttled.incr();
                clock.advance_to(
                    self.read_server
                        .clear_time(clock.now())
                        .saturating_sub(self.config.prefetch_congestion_ns),
                );
            }
        }

        let mut remaining = bytes;
        let mut completion = clock.now();
        let mut first = true;
        while remaining > 0 {
            let chunk = remaining.min(self.config.max_request_bytes);
            let service = transfer_ns(chunk, self.config.read_bw);
            let access = match priority {
                IoPriority::Blocking => {
                    // Queue only behind other demand reads, then reserve
                    // the capacity on the total horizon so prefetch sees
                    // the bandwidth as consumed.
                    let access = self.read_blocking.access(clock.now(), service);
                    self.read_server.access(access.start_ns, service);
                    access
                }
                IoPriority::Prefetch => {
                    // Share the total horizon fairly with demand traffic —
                    // NVMe does not deprioritize readahead I/O; the
                    // asymmetry is only that demand reads never queue
                    // behind prefetch *backlog* (their own horizon above).
                    self.read_server.access(clock.now(), service)
                }
            };
            // Fixed latency applies per request but overlaps across the
            // pipelined splits of one logical transfer: charge it once.
            let lat = if first { latency } else { 0 };
            completion = completion.max(access.end_ns + lat);
            self.stats.read_requests.incr();
            remaining -= chunk;
            first = false;
        }
        self.stats.read_bytes.add(bytes);
        clock.advance_to(completion);
    }

    /// Writes whole blocks starting at `pblock`, charging virtual time.
    ///
    /// # Panics
    ///
    /// Panics if any buffer is not exactly one block.
    pub fn write_blocks(
        &self,
        clock: &mut ThreadClock,
        pblock: u64,
        blocks: &[Vec<u8>],
        priority: IoPriority,
    ) {
        if blocks.is_empty() {
            return;
        }
        self.charge_write(clock, blocks.len() as u64, priority);
        for (i, data) in blocks.iter().enumerate() {
            self.store.write_block(pblock + i as u64, data);
        }
    }

    /// Charges the virtual-time cost of writing `count` contiguous blocks.
    ///
    /// Priority mirrors the read side: blocking (demand) writes queue only
    /// behind other blocking writes, then reserve the capacity on the total
    /// horizon; background write-back / demotion shares the total horizon
    /// and stalls on the congestion window when its backlog would otherwise
    /// pile up in front of demand traffic.
    pub fn charge_write(&self, clock: &mut ThreadClock, count: u64, priority: IoPriority) {
        let bytes = count * BLOCK_SIZE as u64;
        let latency = self.config.write_request_latency_ns();

        if priority == IoPriority::Prefetch && bytes > 0 {
            self.stats.writeback_requests.incr();
            let backlog = self
                .write_server
                .clear_time(clock.now())
                .saturating_sub(clock.now());
            if backlog > self.config.prefetch_congestion_ns {
                self.stats.writeback_throttled.incr();
                clock.advance_to(
                    self.write_server
                        .clear_time(clock.now())
                        .saturating_sub(self.config.prefetch_congestion_ns),
                );
            }
        }

        let mut remaining = bytes;
        let mut completion = clock.now();
        let mut first = true;
        while remaining > 0 {
            let chunk = remaining.min(self.config.max_request_bytes);
            let service = transfer_ns(chunk, self.config.write_bw);
            let access = match priority {
                IoPriority::Blocking => {
                    let access = self.write_blocking.access(clock.now(), service);
                    self.write_server.access(access.start_ns, service);
                    access
                }
                IoPriority::Prefetch => self.write_server.access(clock.now(), service),
            };
            let lat = if first { latency } else { 0 };
            completion = completion.max(access.end_ns + lat);
            self.stats.write_requests.incr();
            remaining -= chunk;
            first = false;
        }
        self.stats.write_bytes.add(bytes);
        clock.advance_to(completion);
    }

    /// Writes bytes at an arbitrary offset within one block, with content
    /// persistence but no time charge (callers charge via
    /// [`Device::charge_write`] at writeback granularity).
    pub fn store_partial(&self, pblock: u64, offset: usize, data: &[u8]) {
        self.store.write_partial(pblock, offset, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::{GlobalClock, NS_PER_US};
    use std::sync::Arc;

    fn clock() -> ThreadClock {
        ThreadClock::new(Arc::new(GlobalClock::new()))
    }

    #[test]
    fn single_block_read_costs_latency_plus_transfer() {
        let device = Device::new(DeviceConfig::local_nvme());
        let mut c = clock();
        device.read_blocks(&mut c, 0, 1, IoPriority::Blocking);
        let expected_min = device.config().read_request_latency_ns();
        assert!(c.now() >= expected_min);
        assert!(c.now() < expected_min + 10 * NS_PER_US);
    }

    #[test]
    fn sequential_batch_amortizes_latency() {
        // 256 blocks in one request vs 256 single-block requests.
        let device_a = Device::new(DeviceConfig::local_nvme());
        let mut batch = clock();
        device_a.read_blocks(&mut batch, 0, 256, IoPriority::Blocking);

        let device_b = Device::new(DeviceConfig::local_nvme());
        let mut singles = clock();
        for block in 0..256 {
            device_b.read_blocks(&mut singles, block, 1, IoPriority::Blocking);
        }
        assert!(
            batch.now() * 10 < singles.now(),
            "batched read {} should be >=10x faster than singles {}",
            batch.now(),
            singles.now()
        );
    }

    #[test]
    fn reads_and_writes_use_independent_bandwidth() {
        let device = Device::new(DeviceConfig::local_nvme());
        let mut reader = clock();
        let mut writer = clock();
        device.read_blocks(&mut reader, 0, 512, IoPriority::Blocking);
        let read_done = reader.now();
        device.write_blocks(
            &mut writer,
            1024,
            &vec![vec![0u8; BLOCK_SIZE]; 4],
            IoPriority::Blocking,
        );
        // The write did not queue behind the big read.
        assert!(writer.now() < read_done);
    }

    #[test]
    fn prefetch_is_throttled_when_backlog_exceeds_window() {
        let config = DeviceConfig::local_nvme();
        let window = config.prefetch_congestion_ns;
        let device = Device::new(config);
        // Build a large backlog with blocking traffic from a stalled clock.
        let mut heavy = clock();
        device.charge_read(&mut heavy, 20_000, IoPriority::Blocking); // ~80MB

        let mut prefetcher = clock();
        device.charge_read(&mut prefetcher, 1, IoPriority::Prefetch);
        assert_eq!(device.stats().prefetch_throttled.get(), 1);
        // The prefetcher was pushed forward to within `window` of the drain.
        assert!(prefetcher.now() + 2 * window >= heavy.now());
    }

    #[test]
    fn blocking_is_never_throttled() {
        let device = Device::new(DeviceConfig::local_nvme());
        let mut heavy = clock();
        device.charge_read(&mut heavy, 20_000, IoPriority::Blocking);
        let mut reader = clock();
        device.charge_read(&mut reader, 1, IoPriority::Blocking);
        assert_eq!(device.stats().prefetch_throttled.get(), 0);
    }

    #[test]
    fn demand_write_p99_shielded_from_writeback_flood() {
        // A saturating background write-back flood (issued from a detached
        // stalled clock, like the reclaim/write-back daemons do) must not
        // queue demand writes: they ride the blocking-only write horizon.
        let device = Device::new(DeviceConfig::local_nvme());
        let mut flood = clock();
        device.charge_write(&mut flood, 200_000, IoPriority::Prefetch); // ~800 MiB
        let backlog_clear = flood.now();

        let mut demand = clock();
        let mut worst_ns = 0u64;
        for i in 0..100u64 {
            let start = demand.now();
            device.charge_write(&mut demand, 8, IoPriority::Blocking);
            worst_ns = worst_ns.max(demand.now() - start);
            // Space the ops out so each is an independent latency sample.
            demand.advance(i % 7 * NS_PER_US);
        }
        // p99 (== worst op, deterministic single stream) stays at the
        // unloaded cost: fixed latency + transfer, nowhere near the flood's
        // drain time.
        let unloaded = device.config().write_request_latency_ns()
            + transfer_ns(8 * BLOCK_SIZE as u64, device.config().write_bw);
        assert!(
            worst_ns <= unloaded + NS_PER_US,
            "demand write p99 {worst_ns}ns regressed above unloaded cost {unloaded}ns"
        );
        assert!(worst_ns * 100 < backlog_clear);
    }

    #[test]
    fn background_write_queues_behind_writeback_backlog() {
        // Background write-back shares the total horizon: once the backlog
        // exceeds the congestion window it is stalled, exactly like
        // prefetch reads.
        let config = DeviceConfig::local_nvme();
        let window = config.prefetch_congestion_ns;
        let device = Device::new(config);
        let mut heavy = clock();
        device.charge_write(&mut heavy, 200_000, IoPriority::Prefetch);

        let mut background = clock();
        device.charge_write(&mut background, 1, IoPriority::Prefetch);
        assert_eq!(device.stats().writeback_throttled.get(), 1);
        assert!(background.now() + 2 * window >= heavy.now());
        // Demand writes were never throttled by any of this.
        let mut demand = clock();
        device.charge_write(&mut demand, 1, IoPriority::Blocking);
        assert_eq!(device.stats().writeback_throttled.get(), 1);
        assert!(demand.now() < heavy.now() / 2);
    }

    #[test]
    fn write_read_round_trip_through_device() {
        let device = Device::new(DeviceConfig::local_nvme());
        let mut c = clock();
        let payload = vec![vec![0x5Au8; BLOCK_SIZE], vec![0xA5u8; BLOCK_SIZE]];
        device.write_blocks(&mut c, 100, &payload, IoPriority::Blocking);
        let back = device.read_blocks(&mut c, 100, 2, IoPriority::Blocking);
        assert_eq!(back, payload);
    }

    #[test]
    fn stats_account_bytes() {
        let device = Device::new(DeviceConfig::local_nvme());
        let mut c = clock();
        device.charge_read(&mut c, 3, IoPriority::Blocking);
        device.charge_write(&mut c, 2, IoPriority::Blocking);
        assert_eq!(device.stats().read_bytes.get(), 3 * BLOCK_SIZE as u64);
        assert_eq!(device.stats().write_bytes.get(), 2 * BLOCK_SIZE as u64);
    }

    #[test]
    fn remote_device_is_slower_for_small_reads() {
        let local = Device::new(DeviceConfig::local_nvme());
        let remote = Device::new(DeviceConfig::remote_nvmeof());
        let mut lc = clock();
        let mut rc = clock();
        local.charge_read(&mut lc, 1, IoPriority::Blocking);
        remote.charge_read(&mut rc, 1, IoPriority::Blocking);
        assert!(rc.now() > lc.now());
    }

    #[test]
    fn try_charge_read_without_plan_matches_charge_read() {
        let plain = Device::new(DeviceConfig::local_nvme());
        let fallible = Device::new(DeviceConfig::local_nvme());
        let mut a = clock();
        let mut b = clock();
        plain.charge_read(&mut a, 64, IoPriority::Blocking);
        fallible
            .try_charge_read(&mut b, 64, IoPriority::Blocking)
            .unwrap();
        assert_eq!(a.now(), b.now());
        assert_eq!(fallible.stats().injected_read_faults.get(), 0);
    }

    #[test]
    fn all_zero_plan_is_bit_identical_to_no_plan() {
        let plain = Device::new(DeviceConfig::local_nvme());
        let planned = Device::with_fault_plan(DeviceConfig::local_nvme(), FaultPlan::seeded(42));
        let mut a = clock();
        let mut b = clock();
        for i in 0..32 {
            let pri = if i % 3 == 0 {
                IoPriority::Prefetch
            } else {
                IoPriority::Blocking
            };
            plain.charge_read(&mut a, 1 + i, pri);
            planned.try_charge_read(&mut b, 1 + i, pri).unwrap();
        }
        assert_eq!(a.now(), b.now());
        assert_eq!(
            plain.stats().read_requests.get(),
            planned.stats().read_requests.get()
        );
        assert_eq!(planned.stats().latency_spike_requests.get(), 0);
    }

    #[test]
    fn certain_eio_fails_every_request_and_charges_latency_only() {
        let device = Device::with_fault_plan(
            DeviceConfig::local_nvme(),
            FaultPlan::seeded(0).with_read_eio(1.0),
        );
        let mut c = clock();
        let err = device
            .try_charge_read(&mut c, 100, IoPriority::Blocking)
            .unwrap_err();
        assert_eq!(err, DeviceError::TransientIo);
        assert_eq!(c.now(), device.config().read_request_latency_ns());
        assert_eq!(device.stats().injected_read_faults.get(), 1);
        assert_eq!(device.stats().read_bytes.get(), 0);
    }

    #[test]
    fn prefetch_only_eio_leaves_demand_reads_untouched() {
        let device = Device::with_fault_plan(
            DeviceConfig::local_nvme(),
            FaultPlan::seeded(0).with_prefetch_eio(1.0),
        );
        let mut c = clock();
        device
            .try_charge_read(&mut c, 8, IoPriority::Blocking)
            .unwrap();
        device
            .try_charge_read(&mut c, 8, IoPriority::Prefetch)
            .unwrap_err();
        assert_eq!(device.stats().injected_read_faults.get(), 1);
    }

    #[test]
    fn latency_spikes_slow_reads_inside_the_window() {
        use simclock::NS_PER_MS;
        // Window covers the whole first millisecond; the clock starts at 0,
        // so the first read pays the spike and a later one does not.
        let plan =
            FaultPlan::seeded(0).with_latency_spikes(100 * NS_PER_MS, NS_PER_MS, 10 * NS_PER_MS);
        let spiky = Device::with_fault_plan(DeviceConfig::local_nvme(), plan);
        let calm = Device::new(DeviceConfig::local_nvme());
        let mut a = clock();
        let mut b = clock();
        spiky.charge_read(&mut a, 1, IoPriority::Blocking);
        calm.charge_read(&mut b, 1, IoPriority::Blocking);
        assert_eq!(a.now(), b.now() + 10 * NS_PER_MS);
        assert_eq!(spiky.stats().latency_spike_requests.get(), 1);
        // Past the window: no extra charge.
        let before = a.now();
        spiky.charge_read(&mut a, 1, IoPriority::Blocking);
        let calm_cost = {
            let mut c = clock();
            calm.charge_read(&mut c, 1, IoPriority::Blocking);
            c.now()
        };
        assert!(a.now() - before <= calm_cost + 1);
        assert_eq!(spiky.stats().latency_spike_requests.get(), 1);
    }

    #[test]
    fn fault_sequence_is_reproducible_across_devices() {
        let mk = || {
            Device::with_fault_plan(
                DeviceConfig::local_nvme(),
                FaultPlan::seeded(1234).with_read_eio(0.4),
            )
        };
        let d1 = mk();
        let d2 = mk();
        let mut c1 = clock();
        let mut c2 = clock();
        let outcomes1: Vec<bool> = (0..64)
            .map(|_| d1.try_charge_read(&mut c1, 1, IoPriority::Blocking).is_ok())
            .collect();
        let outcomes2: Vec<bool> = (0..64)
            .map(|_| d2.try_charge_read(&mut c2, 1, IoPriority::Blocking).is_ok())
            .collect();
        assert_eq!(outcomes1, outcomes2);
        assert_eq!(c1.now(), c2.now());
        assert!(outcomes1.iter().any(|&ok| !ok));
        assert!(outcomes1.iter().any(|&ok| ok));
    }

    #[test]
    fn vectored_read_saves_only_fixed_latency() {
        let runs = [4u64, 4, 4, 4];
        let batched = Device::new(DeviceConfig::local_nvme());
        let mut b = clock();
        batched
            .try_charge_read_vectored(&mut b, &runs, IoPriority::Prefetch)
            .unwrap();

        let singles = Device::new(DeviceConfig::local_nvme());
        let mut s = clock();
        for &count in &runs {
            singles
                .try_charge_read(&mut s, count, IoPriority::Prefetch)
                .unwrap();
        }
        // The vector pays the fixed latency once and pipelines the runs on
        // the bandwidth server, so it saves at least the repeated fixed
        // latencies of the single-run calls.
        let saved = (runs.len() as u64 - 1) * batched.config().read_request_latency_ns();
        assert!(b.now() + saved <= s.now());
        // Same bytes and splits either way; one vectored submission.
        assert_eq!(
            batched.stats().read_bytes.get(),
            singles.stats().read_bytes.get()
        );
        assert_eq!(
            batched.stats().read_requests.get(),
            singles.stats().read_requests.get()
        );
        assert_eq!(batched.stats().vectored_submissions.get(), 1);
    }

    #[test]
    fn vectored_fault_rejects_whole_submission_before_bandwidth() {
        let device = Device::with_fault_plan(
            DeviceConfig::local_nvme(),
            FaultPlan::seeded(0).with_prefetch_eio(1.0),
        );
        let mut c = clock();
        let err = device
            .try_charge_read_vectored(&mut c, &[8, 8, 8], IoPriority::Prefetch)
            .unwrap_err();
        assert_eq!(err, DeviceError::TransientIo);
        assert_eq!(c.now(), device.config().read_request_latency_ns());
        assert_eq!(device.stats().read_bytes.get(), 0);
        assert_eq!(device.stats().vectored_submissions.get(), 0);
        assert_eq!(device.stats().injected_read_faults.get(), 1);
    }

    #[test]
    fn empty_vector_is_free() {
        let device = Device::new(DeviceConfig::local_nvme());
        let mut c = clock();
        device
            .try_charge_read_vectored(&mut c, &[], IoPriority::Prefetch)
            .unwrap();
        device
            .try_charge_read_vectored(&mut c, &[0, 0], IoPriority::Prefetch)
            .unwrap();
        assert_eq!(c.now(), 0);
        assert_eq!(device.stats().vectored_submissions.get(), 0);
    }

    #[test]
    fn zero_count_operations_are_free() {
        let device = Device::new(DeviceConfig::local_nvme());
        let mut c = clock();
        assert!(device
            .read_blocks(&mut c, 0, 0, IoPriority::Blocking)
            .is_empty());
        device.write_blocks(&mut c, 0, &[], IoPriority::Blocking);
        assert_eq!(c.now(), 0);
    }
}
