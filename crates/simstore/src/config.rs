//! Device performance parameters.

use simclock::{NS_PER_MS, NS_PER_US};

/// Performance parameters of a simulated block device.
///
/// Presets mirror the paper's testbeds: [`DeviceConfig::local_nvme`] for the
/// 1.4 GB/s-read / 0.9 GB/s-write NVMe SSD and
/// [`DeviceConfig::remote_nvmeof`] for RDMA-attached NVMe-oF storage, which
/// adds a network round trip to every request and loses some bandwidth to
/// the fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Sequential read bandwidth in bytes per second.
    pub read_bw: f64,
    /// Sequential write bandwidth in bytes per second.
    pub write_bw: f64,
    /// Fixed per-request read latency (flash access + command overhead).
    pub read_latency_ns: u64,
    /// Fixed per-request write latency (device write buffer absorbs most).
    pub write_latency_ns: u64,
    /// Extra per-request network round trip (zero for local devices).
    pub network_rtt_ns: u64,
    /// Largest single request the block layer issues (Linux caps at 2 MiB).
    pub max_request_bytes: u64,
    /// Backlog bound for prefetch traffic: a prefetch request stalls until
    /// the device backlog drops below this window (§4.7 congestion control).
    pub prefetch_congestion_ns: u64,
}

impl DeviceConfig {
    /// The paper's local NVMe SSD testbed.
    pub fn local_nvme() -> Self {
        Self {
            read_bw: 1.4e9,
            write_bw: 0.9e9,
            read_latency_ns: 85 * NS_PER_US,
            write_latency_ns: 25 * NS_PER_US,
            network_rtt_ns: 0,
            max_request_bytes: 2 << 20,
            prefetch_congestion_ns: 2 * NS_PER_MS,
        }
    }

    /// The paper's RDMA NVMe-oF remote storage testbed.
    pub fn remote_nvmeof() -> Self {
        Self {
            read_bw: 1.2e9,
            write_bw: 0.8e9,
            read_latency_ns: 85 * NS_PER_US,
            write_latency_ns: 25 * NS_PER_US,
            network_rtt_ns: 22 * NS_PER_US,
            max_request_bytes: 2 << 20,
            prefetch_congestion_ns: 2 * NS_PER_MS,
        }
    }

    /// Effective fixed latency of one read request, including the network.
    pub fn read_request_latency_ns(&self) -> u64 {
        self.read_latency_ns + self.network_rtt_ns
    }

    /// Effective fixed latency of one write request, including the network.
    pub fn write_request_latency_ns(&self) -> u64 {
        self.write_latency_ns + self.network_rtt_ns
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if bandwidths are non-positive or the request cap is zero —
    /// these would make the virtual-time model degenerate.
    pub fn validate(&self) {
        assert!(self.read_bw > 0.0, "read bandwidth must be positive");
        assert!(self.write_bw > 0.0, "write bandwidth must be positive");
        assert!(
            self.max_request_bytes >= crate::BLOCK_SIZE as u64,
            "max request must cover at least one block"
        );
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::local_nvme()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        DeviceConfig::local_nvme().validate();
        DeviceConfig::remote_nvmeof().validate();
    }

    #[test]
    fn remote_is_strictly_slower_per_request() {
        let local = DeviceConfig::local_nvme();
        let remote = DeviceConfig::remote_nvmeof();
        assert!(remote.read_request_latency_ns() > local.read_request_latency_ns());
        assert!(remote.read_bw < local.read_bw);
    }

    #[test]
    #[should_panic(expected = "read bandwidth")]
    fn validate_rejects_zero_bandwidth() {
        let mut config = DeviceConfig::local_nvme();
        config.read_bw = 0.0;
        config.validate();
    }

    #[test]
    fn default_is_local_nvme() {
        assert_eq!(DeviceConfig::default(), DeviceConfig::local_nvme());
    }
}
