//! Property tests for the device model: capacity conservation, priority
//! semantics, and content integrity under arbitrary interleavings.

use proptest::prelude::*;
use simclock::{GlobalClock, ThreadClock};
use simstore::{Device, DeviceConfig, IoPriority, BLOCK_SIZE};
use std::sync::Arc;

fn clock() -> ThreadClock {
    ThreadClock::new(Arc::new(GlobalClock::new()))
}

proptest! {
    #[test]
    fn read_time_never_beats_bandwidth(counts in prop::collection::vec(1u64..512, 1..20)) {
        let device = Device::new(DeviceConfig::local_nvme());
        let mut c = clock();
        let total_blocks: u64 = counts.iter().sum();
        for count in counts {
            device.charge_read(&mut c, count, IoPriority::Blocking);
        }
        let floor = simclock::transfer_ns(total_blocks * BLOCK_SIZE as u64, 1.4e9);
        prop_assert!(
            c.now() >= floor,
            "elapsed {} cannot beat the bandwidth floor {}",
            c.now(),
            floor
        );
    }

    #[test]
    fn mixed_priority_accounting_holds(ops in prop::collection::vec((1u64..256, prop::bool::ANY), 1..30)) {
        // Priority queuing intentionally lets demand I/O overlap a queued
        // prefetch stream in time (NVMe-style), so the *sum* of both
        // classes is not serialized on one horizon from the demand side.
        // What must hold: per-class bandwidth floors and exact byte
        // accounting.
        let device = Device::new(DeviceConfig::local_nvme());
        let global = Arc::new(GlobalClock::new());
        let mut blocking_clock = ThreadClock::new(Arc::clone(&global));
        let mut prefetch_clock = ThreadClock::new(global);
        let mut total = 0u64;
        let mut blocking_blocks = 0u64;
        let mut prefetch_blocks = 0u64;
        for (count, is_prefetch) in ops {
            total += count;
            if is_prefetch {
                prefetch_blocks += count;
                device.charge_read(&mut prefetch_clock, count, IoPriority::Prefetch);
            } else {
                blocking_blocks += count;
                device.charge_read(&mut blocking_clock, count, IoPriority::Blocking);
            }
        }
        let floor = |blocks: u64| simclock::transfer_ns(blocks * BLOCK_SIZE as u64, 1.4e9);
        prop_assert!(blocking_clock.now() >= floor(blocking_blocks));
        prop_assert!(prefetch_clock.now() >= floor(prefetch_blocks));
        prop_assert_eq!(device.stats().read_bytes.get(), total * BLOCK_SIZE as u64);
    }

    #[test]
    fn content_round_trip_arbitrary_blocks(writes in prop::collection::vec((0u64..64, any::<u8>()), 1..40)) {
        let device = Device::new(DeviceConfig::local_nvme());
        let mut c = clock();
        let mut expected = std::collections::HashMap::new();
        for (block, fill) in writes {
            device.write_blocks(&mut c, block, &[vec![fill; BLOCK_SIZE]], IoPriority::Blocking);
            expected.insert(block, fill);
        }
        for (block, fill) in expected {
            let data = device.read_blocks(&mut c, block, 1, IoPriority::Blocking);
            prop_assert!(data[0].iter().all(|&b| b == fill));
        }
    }

    #[test]
    fn partial_writes_compose(parts in prop::collection::vec((0usize..4000, prop::collection::vec(any::<u8>(), 1..96)), 1..24)) {
        let device = Device::new(DeviceConfig::local_nvme());
        let mut shadow = simstore::synthetic_block(7);
        for (offset, data) in &parts {
            let offset = (*offset).min(BLOCK_SIZE - data.len());
            device.store_partial(7, offset, data);
            shadow[offset..offset + data.len()].copy_from_slice(data);
        }
        prop_assert_eq!(device.store().read_block_vec(7), shadow);
    }
}

#[test]
fn blocking_latency_unaffected_by_prefetch_backlog() {
    let device = Device::new(DeviceConfig::local_nvme());
    let global = Arc::new(GlobalClock::new());
    // Queue a large prefetch stream.
    let mut stream = ThreadClock::detached_at(Arc::clone(&global), 0);
    device.charge_read(&mut stream, 100_000, IoPriority::Prefetch); // 400 MB

    // A demand read right after still completes at demand latency.
    let mut reader = ThreadClock::new(global);
    device.charge_read(&mut reader, 4, IoPriority::Blocking);
    let latency = reader.now();
    assert!(
        latency < 200_000,
        "demand read must not queue behind the stream, took {latency}ns"
    );
}
