//! Tiered-store suite: knob inertness of `RuntimeConfig::tiering`,
//! cross-tier promotion of predicted-hot ranges, remote-fault degradation
//! through the retry ladder, the dirty-page ledger invariant, write-back
//! coalescing, and mixed read/write same-seed determinism.

use std::sync::Arc;

use crossprefetch::{
    Mode, Runtime, RuntimeConfig, RuntimeReport, Tier, TieredStore, TieringConfig, WritebackConfig,
    PAGE_SIZE,
};
use simstore::FaultPlan;

use simos::{Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig};

const MECHANISMS: [Mode; 6] = [
    Mode::AppOnly,
    Mode::OsOnly,
    Mode::Predict,
    Mode::PredictOpt,
    Mode::FetchAllOpt,
    Mode::FincoreApp,
];

fn flat_os(memory_mb: u64) -> Arc<Os> {
    Os::new(
        OsConfig::with_memory_mb(memory_mb),
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    )
}

fn tiered_os(memory_mb: u64, local_capacity_blocks: u64) -> Arc<Os> {
    Os::new_tiered(
        OsConfig::with_memory_mb(memory_mb),
        TieredStore::new(
            Device::new(DeviceConfig::local_nvme()),
            Device::new(DeviceConfig::remote_nvmeof()),
            local_capacity_blocks,
        ),
        FileSystem::new(FsKind::Ext4Like),
    )
}

/// Streams `total` bytes in `chunk`-byte sequential reads.
fn stream(file: &crossprefetch::CpFile, clock: &mut simclock::ThreadClock, total: u64, chunk: u64) {
    let mut offset = 0;
    while offset < total {
        file.read_charge(clock, offset, chunk.min(total - offset));
        offset += chunk;
    }
}

/// The `tiering` JSON section of a report (exclusive of `registries`).
fn tiering_section(json: &str) -> &str {
    let start = json.find("\"tiering\":").expect("tiering section present");
    let end = json
        .find("\"registries\":")
        .expect("registries section present");
    &json[start..end]
}

/// With `tiering: None` on an un-tiered OS (the default everywhere), the
/// additive `tiering` telemetry section is byte-identical across all six
/// Table-2 mechanisms: disabled, no promotions, no write-back daemon.
/// The knob's absence must not perturb any mechanism.
#[test]
fn tiering_section_is_inert_and_identical_across_mechanisms() {
    let mut sections: Vec<String> = Vec::new();
    for mode in MECHANISMS {
        let runtime = Runtime::with_mode(flat_os(64), mode);
        let mut clock = runtime.new_clock();
        let file = runtime.create_sized(&mut clock, "/t", 4 << 20).unwrap();
        stream(&file, &mut clock, 4 << 20, 64 * 1024);
        runtime.flush_prefetch_batches(&mut clock);
        let json = RuntimeReport::collect(&runtime).to_json();
        sections.push(tiering_section(&json).to_string());
    }
    for section in &sections {
        assert!(section.contains("\"enabled\":false"), "planner must be off");
        assert!(
            section.contains("\"writeback_enabled\":false"),
            "daemon must be off"
        );
        assert!(
            section.contains("\"issued\":0") && section.contains("\"dirtied_pages\":0"),
            "a read-only default-config run must leave the section zeroed: {section}"
        );
        assert_eq!(
            section, &sections[0],
            "tiering section must be byte-identical across mechanisms"
        );
    }
}

/// A tiering config on an un-tiered OS builds no planner: there is
/// nowhere to promote to, so the knob stays inert and telemetry reports
/// it disabled.
#[test]
fn tiering_config_without_tiered_store_is_inert() {
    let mut config = RuntimeConfig::new(Mode::Predict);
    config.tiering = Some(TieringConfig::new());
    let runtime = Runtime::new(flat_os(64), config);
    let mut clock = runtime.new_clock();
    let file = runtime.create_sized(&mut clock, "/t", 4 << 20).unwrap();
    stream(&file, &mut clock, 4 << 20, 64 * 1024);
    let report = RuntimeReport::collect(&runtime);
    assert!(!report.tiering_enabled);
    assert_eq!(report.promotions_issued, 0);
}

/// The heart of the subsystem: a predictable sequential stream over a
/// remote-resident file gets its predicted-hot ranges promoted to the
/// local tier in the background, and the promotion pages are billed as
/// prefetch so the quality ledger keeps balancing.
#[test]
fn promotions_move_predicted_hot_ranges_local_and_books_balance() {
    let os = tiered_os(64, 8192);
    let mut config = RuntimeConfig::new(Mode::Predict);
    config.tiering = Some(TieringConfig::new());
    let runtime = Runtime::new(os, config);
    let mut clock = runtime.new_clock();
    let file = runtime.create_sized(&mut clock, "/hot", 16 << 20).unwrap();
    stream(&file, &mut clock, 16 << 20, 64 * 1024);
    runtime.flush_prefetch_batches(&mut clock);

    let stats = runtime.stats();
    assert!(stats.promotions_issued.get() > 0, "planner never fired");
    assert!(
        stats.promotions_completed.get() > 0,
        "no promotion finished"
    );
    let tiered = runtime.os().tiered().expect("tiered store").clone();
    assert!(
        tiered.stats().promoted_blocks.get() > 0,
        "placement never moved a block local"
    );
    assert!(tiered.local_resident_blocks() > 0);
    // The stream's head was promoted behind the reads: some early block
    // now lives on the local tier.
    let promoted_somewhere = (0..4096).any(|lb| tiered.tier_of(file.ino().0, lb) == Tier::Local);
    assert!(promoted_somewhere, "no block of the file ended up local");

    // Ledger identity with promotions billed as prefetch.
    runtime.os().drop_caches(&mut clock);
    let report = RuntimeReport::collect(&runtime);
    assert!(report.tiering_enabled);
    assert_eq!(report.promotions_issued, stats.promotions_issued.get());
    let q = report.prefetch_quality;
    assert_eq!(
        q.timely + q.late + q.wasted,
        report.pages_initiated,
        "quality books don't balance with promotions in play \
         (timely={} late={} wasted={} initiated={})",
        q.timely,
        q.late,
        q.wasted,
        report.pages_initiated
    );
    // Both tiers saw traffic: the remote tier fed promotions and cold
    // misses, the local tier absorbed promoted reads or the copies.
    assert!(report.tier_remote_read_bytes > 0);
    assert!(
        report.tier_local_write_bytes > 0,
        "promotion copies write locally"
    );
}

/// Remote-tier transient EIO during promotion: every attempt faults, the
/// job retries through the doubling backoff ladder, gives up, and leaves
/// the placement map untouched — demand reads (blocking class, unfaulted)
/// keep streaming off the remote tier and the books still balance.
#[test]
fn remote_faults_exhaust_retry_ladder_without_corrupting_placement() {
    let os = Os::new_tiered(
        OsConfig::with_memory_mb(64),
        TieredStore::new(
            Device::new(DeviceConfig::local_nvme()),
            Device::with_fault_plan(
                DeviceConfig::remote_nvmeof(),
                FaultPlan::seeded(9).with_prefetch_eio(1.0),
            ),
            8192,
        ),
        FileSystem::new(FsKind::Ext4Like),
    );
    let mut config = RuntimeConfig::new(Mode::Predict);
    config.tiering = Some(TieringConfig::new());
    let runtime = Runtime::new(os, config);
    let mut clock = runtime.new_clock();
    let file = runtime.create_sized(&mut clock, "/flaky", 8 << 20).unwrap();
    stream(&file, &mut clock, 8 << 20, 64 * 1024);
    runtime.flush_prefetch_batches(&mut clock);

    let stats = runtime.stats();
    assert!(stats.promotions_issued.get() > 0, "planner never fired");
    assert!(
        stats.promotion_give_ups.get() > 0,
        "certain faults must exhaust the retry budget"
    );
    assert!(
        stats.promotion_retries.get() >= stats.promotion_give_ups.get(),
        "each give-up retried through the backoff ladder first"
    );
    assert_eq!(stats.promotions_completed.get(), 0);

    // Placement map unchanged: nothing moved local, every block of the
    // file still resolves to the remote tier.
    let tiered = runtime.os().tiered().expect("tiered store").clone();
    assert_eq!(tiered.stats().promoted_blocks.get(), 0);
    assert_eq!(tiered.local_resident_blocks(), 0);
    let pages = (8u64 << 20) / PAGE_SIZE;
    assert!((0..pages).all(|lb| tiered.tier_of(file.ino().0, lb) == Tier::Remote));

    // The workload itself was never hurt: demand reads are blocking
    // class, which the fault plan leaves alone.
    assert_eq!(runtime.stats().read_errors.get(), 0);

    // Failed promotions published nothing, so they owe the ledger
    // nothing and the identity still holds.
    runtime.os().drop_caches(&mut clock);
    let report = RuntimeReport::collect(&runtime);
    let q = report.prefetch_quality;
    assert_eq!(q.timely + q.late + q.wasted, report.pages_initiated);
}

/// The dirty-page ledger invariant — `dirtied` equals `written_back +
/// dropped + still_dirty` — holds through a mid-stream `drop_caches` (which
/// flushes dirty pages rather than discarding them) and through `unlink`
/// (which honestly drops them).
#[test]
fn dirty_ledger_balances_through_drop_caches_and_unlink() {
    let mut os_config = OsConfig::with_memory_mb(64);
    os_config.writeback = Some(WritebackConfig {
        file_dirty_threshold_pages: 64,
        // High background/deadline bars so `b`'s small dirty set survives
        // until the unlink below exercises the honest-drop path.
        background_dirty_pages: 100_000,
        ..WritebackConfig::default()
    });
    let os = Os::new(
        os_config,
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    );
    let runtime = Runtime::with_mode(os, Mode::Predict);
    let mut clock = runtime.new_clock();
    let a = runtime.create_sized(&mut clock, "/a", 8 << 20).unwrap();
    let b = runtime.create_sized(&mut clock, "/b", 2 << 20).unwrap();

    let check = |label: &str| {
        let os = runtime.os();
        let s = os.stats();
        assert_eq!(
            s.dirtied_pages.get(),
            s.written_back_pages.get() + s.dropped_dirty_pages.get() + os.mem().dirty(),
            "{label}: dirty ledger out of balance \
             (dirtied={} written_back={} dropped={} dirty_now={})",
            s.dirtied_pages.get(),
            s.written_back_pages.get(),
            s.dropped_dirty_pages.get(),
            os.mem().dirty()
        );
    };

    // First half of the stream: page-aligned whole-page writes.
    for i in 0..256u64 {
        a.write_charge(&mut clock, (i * 3 % 1024) * PAGE_SIZE, PAGE_SIZE);
    }
    check("mid-stream");

    // Mid-stream cache drop: dirty pages are flushed, not lost.
    runtime.os().drop_caches(&mut clock);
    assert_eq!(runtime.os().mem().dirty(), 0, "drop_caches flushes dirty");
    check("after drop_caches");

    // Second half, plus dirty pages on `b` that are dropped by unlink.
    for i in 0..256u64 {
        a.write_charge(&mut clock, (i * 7 % 1024) * PAGE_SIZE, PAGE_SIZE);
        if i % 16 == 0 {
            // 16 pages: below every flush threshold, so they stay dirty.
            b.write_charge(&mut clock, (i % 512) * PAGE_SIZE, PAGE_SIZE);
        }
    }
    check("second half");
    drop(b);
    runtime.os().unlink(&mut clock, "/b").unwrap();
    assert!(
        runtime.os().stats().dropped_dirty_pages.get() > 0,
        "unlink must honestly account discarded dirty pages"
    );
    check("after unlink");

    a.fsync(&mut clock);
    assert_eq!(runtime.os().mem().dirty(), 0, "fsync drains the file");
    check("after fsync");
    assert!(runtime.os().stats().wb_flush_threshold.get() > 0);
}

/// Deferred write-back with adjacent-run coalescing issues strictly fewer
/// device write crossings than write-through for the same dirty pages.
#[test]
fn deferred_writeback_coalesces_write_crossings() {
    let run = |write_through: bool| {
        let mut os_config = OsConfig::with_memory_mb(64);
        os_config.writeback = Some(WritebackConfig {
            write_through,
            coalesce_gap_pages: 8,
            ..WritebackConfig::default()
        });
        let os = Os::new(
            os_config,
            Device::new(DeviceConfig::local_nvme()),
            FileSystem::new(FsKind::Ext4Like),
        );
        let runtime = Runtime::with_mode(os, Mode::Predict);
        let mut clock = runtime.new_clock();
        let file = runtime.create_sized(&mut clock, "/w", 8 << 20).unwrap();
        // 4-page dirty runs separated by 4-page gaps: coalescable under
        // the 8-page gap budget, but distinct write calls.
        for i in 0..128u64 {
            file.write_charge(&mut clock, i * 8 * PAGE_SIZE, 4 * PAGE_SIZE);
        }
        file.fsync(&mut clock);
        let report = RuntimeReport::collect(&runtime);
        (
            runtime.os().device().stats().write_requests.get(),
            report.wb_runs_coalesced,
            report.wb_written_back_pages,
        )
    };
    let (through_crossings, _, through_pages) = run(true);
    let (deferred_crossings, coalesced, deferred_pages) = run(false);
    assert!(coalesced > 0, "gap coalescing never merged a run");
    assert!(
        deferred_crossings < through_crossings,
        "deferred write-back must issue fewer device writes \
         ({deferred_crossings} vs {through_crossings})"
    );
    // Both paths eventually wrote every dirtied page back.
    assert_eq!(through_pages, deferred_pages);
}

/// Mixed read/write workload on the full tiered stack (promotions,
/// write-back daemon, demotions) is deterministic: same seed, same
/// virtual timeline, byte-identical telemetry.
#[test]
fn mixed_read_write_tiered_runs_are_deterministic() {
    let run = || {
        let mut os_config = OsConfig::with_memory_mb(32);
        os_config.writeback = Some(WritebackConfig {
            file_dirty_threshold_pages: 128,
            ..WritebackConfig::default()
        });
        let os = Os::new_tiered(
            os_config,
            TieredStore::new(
                Device::new(DeviceConfig::local_nvme()),
                Device::new(DeviceConfig::remote_nvmeof()),
                2048,
            ),
            FileSystem::new(FsKind::Ext4Like),
        );
        let mut config = RuntimeConfig::new(Mode::Predict);
        config.tiering = Some(TieringConfig::new());
        let runtime = Runtime::new(os, config);
        let mut clock = runtime.new_clock();
        let file = runtime.create_sized(&mut clock, "/mix", 16 << 20).unwrap();
        // Deterministic interleaving: sequential read stream with a write
        // burst every 16th step (hash-scattered, page-aligned).
        for i in 0..512u64 {
            file.read_charge(&mut clock, (i % 4096) * PAGE_SIZE, 4 * PAGE_SIZE);
            if i % 16 == 0 {
                let slot = (i.wrapping_mul(0x9E37_79B9)) % 4000;
                file.write_charge(&mut clock, slot * PAGE_SIZE, 2 * PAGE_SIZE);
            }
        }
        runtime.flush_prefetch_batches(&mut clock);
        runtime.os().drop_caches(&mut clock);
        (clock.now(), RuntimeReport::collect(&runtime).to_json())
    };
    let (a_ns, a_json) = run();
    let (b_ns, b_json) = run();
    assert_eq!(a_ns, b_ns, "virtual timelines diverged");
    assert_eq!(a_json, b_json, "telemetry diverged");
    // The run actually exercised the machinery it claims to cover.
    assert!(a_json.contains("\"enabled\":true"));
}
