//! Integration checks for request-scoped causal span tracing.
//!
//! The acceptance contract for the span subsystem:
//!
//! * spans disabled ⇒ same-seed telemetry is byte-identical to the same
//!   run with the subsystem never consulted (and the simulated timeline
//!   matches the spans-enabled run exactly — observation never perturbs
//!   virtual time);
//! * spans enabled ⇒ every kept exemplar's critical-path buckets sum to
//!   its end-to-end latency to the nanosecond, including at least one
//!   demand-miss exemplar;
//! * folded stacks parse (root frame, `stage:` frames, positive counts).

use crossprefetch::{Mode, ReadClass, Runtime, RuntimeConfig, RuntimeReport};
use simos::{Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig};
use workloads::kvprobe::{run_kvprobe, setup_kvprobe, KvProbeConfig};

fn runtime(mode: Mode) -> Runtime {
    let os = Os::new(
        OsConfig::with_memory_mb(64),
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    );
    Runtime::new(os, RuntimeConfig::new(mode))
}

/// A deterministic mixed read pattern that produces all three latency
/// classes: cold sequential (demand misses at the head, prefetch hits
/// down the stream), warm re-reads (cache hits), and far jumps.
fn mixed_reads(runtime: &Runtime) -> u64 {
    let mut clock = runtime.new_clock();
    let file = runtime
        .create_sized(&mut clock, "/data/span.bin", 16 << 20)
        .expect("fresh namespace");
    let chunk = 16 * 1024u64;
    for i in 0..256u64 {
        file.read_charge(&mut clock, i * chunk, chunk);
    }
    for i in 0..64u64 {
        file.read_charge(&mut clock, i * chunk, chunk);
    }
    let mut state = 0xD1B54A32D192ED03u64;
    for _ in 0..64 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        file.read_charge(&mut clock, (state % (15 << 20)) & !4095, chunk);
    }
    runtime.flush_prefetch_batches(&mut clock);
    clock.now()
}

#[test]
fn exemplar_buckets_sum_to_latency_exactly() {
    let rt = runtime(Mode::PredictOpt);
    rt.spans().set_enabled(true);
    mixed_reads(&rt);

    let exemplars = rt.spans().exemplars();
    assert!(!exemplars.is_empty(), "reservoirs must hold exemplars");
    for exemplar in &exemplars {
        assert_eq!(
            exemplar.path.total_ns(),
            exemplar.latency_ns,
            "critical-path buckets must partition the latency (req {} class {})",
            exemplar.req_id,
            exemplar.class.name()
        );
        // Stage durations chain entry→exit, so they sum to latency too.
        let stage_total: u64 = exemplar.stages.iter().map(|s| s.dur_ns).sum();
        assert_eq!(stage_total, exemplar.latency_ns);
    }

    // The cold head of the sequential scan guarantees demand misses; the
    // slowest of them must be held with device time attributed.
    let misses = rt.spans().exemplars_for(ReadClass::DemandMiss);
    assert!(
        !misses.is_empty(),
        "cold reads must leave demand-miss exemplars"
    );
    assert!(
        misses[0].path.device_service_ns > 0,
        "a demand miss spends time on the device"
    );

    // Totals cover every traced read, not just the kept exemplars.
    let report = RuntimeReport::collect(&rt);
    assert!(report.spans_enabled);
    assert_eq!(report.spans_reads_traced, 256 + 64 + 64);
    let class_reads: u64 = report.spans_classes.iter().map(|(_, t)| t.reads).sum();
    assert_eq!(class_reads, report.spans_reads_traced);
}

#[test]
fn disabled_spans_leave_telemetry_and_timeline_untouched() {
    // Same seed, three runs: spans never enabled, spans enabled, and the
    // export surface with the spans section stripped must agree between
    // the first two on (a) the simulated end time — observation adds no
    // virtual cost — and (b) every pre-span telemetry byte.
    let rt_off = runtime(Mode::PredictOpt);
    let end_off = mixed_reads(&rt_off);
    let json_off = RuntimeReport::collect(&rt_off).to_json();

    let rt_on = runtime(Mode::PredictOpt);
    rt_on.spans().set_enabled(true);
    let end_on = mixed_reads(&rt_on);
    let json_on = RuntimeReport::collect(&rt_on).to_json();

    assert_eq!(
        end_off, end_on,
        "span observation must not perturb the virtual timeline"
    );
    // Strip the additive spans section from both exports; everything
    // else must match byte for byte.
    let strip = |json: &str| -> String {
        let start = json.find("\"spans\":{").expect("spans section present");
        let tail = json[start..]
            .find("},\"registries\"")
            .expect("registries follow")
            + start;
        format!("{}{}", &json[..start], &json[tail + 2..])
    };
    assert_eq!(strip(&json_off), strip(&json_on));
    assert!(json_off.contains("\"spans\":{\"enabled\":false,\"reads_traced\":0,"));
}

#[test]
fn kvprobe_folded_stacks_parse() {
    let rt = runtime(Mode::PredictOpt);
    rt.spans().set_enabled(true);
    let mut clock = rt.new_clock();
    let cfg = KvProbeConfig {
        probes: 1024,
        ..KvProbeConfig::default()
    };
    setup_kvprobe(&rt, &cfg, "/kv/span.db");
    run_kvprobe(&rt, &mut clock, &cfg, "/kv/span.db");

    let exemplars = rt.spans().exemplars();
    assert!(!exemplars.is_empty());
    let mut lines = 0usize;
    for exemplar in &exemplars {
        for (stack, weight) in exemplar.folded_lines() {
            lines += 1;
            assert!(weight > 0, "zero-weight folded line: {stack}");
            let frames: Vec<&str> = stack.split(';').collect();
            assert!(frames.len() >= 2, "stack needs root + frame: {stack}");
            assert!(
                frames[0].starts_with("read-"),
                "root is the latency class: {stack}"
            );
            assert!(
                frames[1].starts_with("stage:"),
                "second frame is the pipeline stage: {stack}"
            );
        }
    }
    assert!(lines > 0, "exemplars must fold into at least one line");
}

#[test]
fn exemplar_reservoirs_respect_configured_depth() {
    let os = Os::new(
        OsConfig::with_memory_mb(64),
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    );
    let mut config = RuntimeConfig::new(Mode::PredictOpt);
    config.span_exemplars = 3;
    let rt = Runtime::new(os, config);
    rt.spans().set_enabled(true);
    mixed_reads(&rt);

    for class in [
        ReadClass::CacheHit,
        ReadClass::PrefetchHit,
        ReadClass::DemandMiss,
    ] {
        let kept = rt.spans().exemplars_for(class);
        assert!(kept.len() <= 3, "reservoir depth is a hard cap");
        // Slowest-first ordering within a class.
        for pair in kept.windows(2) {
            assert!(pair[0].latency_ns >= pair[1].latency_ns);
        }
    }
    assert!(
        rt.spans().exemplars_evicted() > 0,
        "384 reads into 3 slots must displace"
    );
}
