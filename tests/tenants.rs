//! Tenant arbiter suite: knob-inertness of `RuntimeConfig::tenants` for
//! untenanted opens, same-seed fleet determinism, the per-tenant
//! quality-ledger invariant under admission throttling, and starvation
//! freedom for low-QoS tenants.

use crossprefetch::{Mode, Runtime, RuntimeConfig, RuntimeReport, TenantId, TenantsConfig};
use simos::{Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig};
use workloads::{run_fleet, setup_fleet, FleetConfig, FleetTenantSpec};

fn os(memory_mb: u64) -> std::sync::Arc<Os> {
    Os::new(
        OsConfig::with_memory_mb(memory_mb),
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    )
}

const MECHANISMS: [Mode; 6] = [
    Mode::AppOnly,
    Mode::OsOnly,
    Mode::Predict,
    Mode::PredictOpt,
    Mode::FetchAllOpt,
    Mode::FincoreApp,
];

/// A small cold-cache fleet over little memory: window budgets are tiny
/// and the cache sits above the pressure watermark, so the admission
/// ladder actually engages.
fn throttled_fleet() -> FleetConfig {
    FleetConfig {
        tenants: vec![
            FleetTenantSpec::new("batch-a", crossprefetch::QosClass::Bronze, true),
            FleetTenantSpec::new("batch-b", crossprefetch::QosClass::Bronze, true),
            FleetTenantSpec::new("standard", crossprefetch::QosClass::Silver, false),
            FleetTenantSpec::new("gold", crossprefetch::QosClass::Gold, false),
        ],
        files_per_tenant: 1,
        file_bytes: 16 << 20,
        requests: 2048,
        reads_per_request: 4,
        read_bytes: 16 * 1024,
        ..FleetConfig::default()
    }
}

/// Removes a `"name":{...},`-shaped top-level section from a report JSON
/// string (brace-counted), as `examples/schema_compat.rs` does.
fn strip_section(json: &str, name: &str) -> String {
    let key = format!("\"{name}\":{{");
    let Some(start) = json.find(&key) else {
        return json.to_string();
    };
    let bytes = json.as_bytes();
    let mut depth = 0usize;
    let mut i = start + key.len() - 1;
    let end = loop {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    break i;
                }
            }
            _ => {}
        }
        i += 1;
    };
    let mut tail = end + 1;
    if bytes.get(tail) == Some(&b',') {
        tail += 1;
    }
    format!("{}{}", &json[..start], &json[tail..])
}

/// The deterministic mixed workload the batching/ring suites drive, with
/// plain (untenanted) opens.
fn run_untenanted(config: RuntimeConfig) -> String {
    let runtime = Runtime::new(os(48), config);
    let mut clock = runtime.new_clock();
    let file = runtime
        .create_sized(&mut clock, "/data/w.bin", 48 << 20)
        .unwrap();
    let chunk = 16 * 1024u64;
    for i in 0..512u64 {
        file.read_charge(&mut clock, i * chunk, chunk);
    }
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..128 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        file.read_charge(&mut clock, (state % (47 << 20)) & !4095, chunk);
    }
    runtime.flush_prefetch_batches(&mut clock);
    RuntimeReport::collect(&runtime).to_json()
}

/// Configuring tenants without ever binding one must not change a single
/// byte outside the additive `tenants` section, for every mechanism:
/// untenanted files bypass admission entirely.
#[test]
fn tenants_config_is_inert_for_untenanted_opens() {
    for mode in MECHANISMS {
        let without = run_untenanted(RuntimeConfig::new(mode));
        let mut config = RuntimeConfig::new(mode);
        config.tenants = Some(TenantsConfig::new(throttled_fleet().tenant_specs()));
        let with = run_untenanted(config);
        assert!(
            with.contains("\"tenants\":{\"enabled\":true"),
            "{}: configured arbiter should surface in telemetry",
            mode.label()
        );
        assert!(
            without.contains("\"tenants\":{\"enabled\":false"),
            "{}: unconfigured arbiter should read disabled",
            mode.label()
        );
        assert_eq!(
            strip_section(&with, "tenants"),
            strip_section(&without, "tenants"),
            "{}: tenant config leaked into untenanted telemetry",
            mode.label()
        );
    }
}

/// Same seed, same fleet, same budgets: the arbitrated run is fully
/// deterministic, down to the exported telemetry bytes.
#[test]
fn same_seed_fleet_is_byte_identical() {
    let cfg = throttled_fleet();
    let mut exports = Vec::new();
    for _ in 0..2 {
        let mut config = RuntimeConfig::new(Mode::PredictOpt);
        config.tenants = Some(TenantsConfig::new(cfg.tenant_specs()));
        let runtime = Runtime::new(os(8), config);
        setup_fleet(&runtime, &cfg);
        let mut clock = runtime.new_clock();
        run_fleet(&runtime, &mut clock, &cfg);
        exports.push(RuntimeReport::collect(&runtime).to_json());
    }
    assert_eq!(exports[0], exports[1]);
}

/// The closed-loop quality invariant holds *per tenant* while admission
/// control rejects and degrades prefetch mid-stream: after the cache
/// drop settles the books, each tenant's timely + late + wasted equals
/// exactly the pages initiated on its files.
///
/// `Mode::Predict` silences the OS heuristic readahead and does no
/// open-time prefetch, so each tenant's runtime prefetches are the only
/// speculative pages its ledger sees.
#[test]
fn per_tenant_quality_books_balance_under_throttling() {
    let cfg = throttled_fleet();
    let mut config = RuntimeConfig::new(Mode::Predict);
    config.tenants = Some(TenantsConfig::new(cfg.tenant_specs()));
    let runtime = Runtime::new(os(8), config);
    setup_fleet(&runtime, &cfg);
    let mut clock = runtime.new_clock();
    run_fleet(&runtime, &mut clock, &cfg);
    runtime.os().drop_caches(&mut clock);

    let arbiter = runtime.tenants().expect("arbiter configured");
    let reports = arbiter.reports();
    let degraded: u64 = reports
        .iter()
        .map(|t| t.degraded_coalesced + t.degraded_blind + t.denied)
        .sum();
    assert!(
        degraded > 0,
        "the 8 MiB cache should force the ladder below Full"
    );
    let initiated: u64 = reports.iter().map(|t| t.initiated_pages).sum();
    assert!(initiated > 0, "the fleet should trigger prefetching");
    for (idx, report) in reports.iter().enumerate() {
        let q = arbiter.tenant_quality(runtime.os(), TenantId(idx as u32));
        assert_eq!(
            q.timely + q.late + q.wasted,
            report.initiated_pages,
            "{}: per-tenant books don't balance (timely={} late={} wasted={} initiated={})",
            report.name,
            q.timely,
            q.late,
            q.wasted,
            report.initiated_pages
        );
    }
}

/// The efficiency floor keeps even a wasteful bronze tenant's weight
/// above zero: under sustained saturation every tenant still completes
/// reads and wins some prefetch admission.
#[test]
fn no_tenant_starves_under_saturation() {
    let cfg = throttled_fleet();
    let mut config = RuntimeConfig::new(Mode::PredictOpt);
    config.tenants = Some(TenantsConfig::new(cfg.tenant_specs()));
    let runtime = Runtime::new(os(8), config);
    setup_fleet(&runtime, &cfg);
    let mut clock = runtime.new_clock();
    let result = run_fleet(&runtime, &mut clock, &cfg);

    let arbiter = runtime.tenants().expect("arbiter configured");
    assert!(arbiter.rebalances() > 0, "windows should have rebalanced");
    for (row, report) in result.per_tenant.iter().zip(arbiter.reports()) {
        assert!(row.reads > 0, "{}: no reads completed", row.name);
        assert!(row.hit_pages > 0, "{}: no cached pages at all", row.name);
        assert!(
            report.admitted_pages > 0,
            "{}: starved of prefetch admission despite the efficiency floor",
            report.name
        );
        assert!(
            report.budget_pages > 0,
            "{}: rebalance assigned a zero budget",
            report.name
        );
    }
}
