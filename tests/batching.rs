//! Batched prefetch submission: off-path byte-identity, flush policy,
//! partial-batch failure, and crossing-count savings.

use crossprefetch::{Mode, Runtime, RuntimeConfig, RuntimeReport};
use simos::{Device, DeviceConfig, FaultPlan, FileSystem, FsKind, Os, OsConfig};

fn os(memory_mb: u64) -> std::sync::Arc<Os> {
    Os::new(
        OsConfig::with_memory_mb(memory_mb),
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    )
}

/// A deterministic mixed workload: sequential ramp, warm re-read, random
/// jumps. Returns the runtime's JSON report after draining batches.
fn run_workload(config: RuntimeConfig) -> String {
    let runtime = Runtime::new(os(48), config);
    let mut clock = runtime.new_clock();
    let file = runtime
        .create_sized(&mut clock, "/data/w.bin", 48 << 20)
        .unwrap();
    let chunk = 16 * 1024u64;
    for i in 0..512u64 {
        file.read_charge(&mut clock, i * chunk, chunk);
    }
    for i in 0..64u64 {
        file.read_charge(&mut clock, i * chunk, chunk);
    }
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..128 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        file.read_charge(&mut clock, (state % (47 << 20)) & !4095, chunk);
    }
    runtime.flush_prefetch_batches(&mut clock);
    RuntimeReport::collect(&runtime).to_json()
}

/// All six Table-2 mechanisms: with `batch_submit` off, the batching knobs
/// must be inert — telemetry is byte-identical no matter how they are set.
#[test]
fn batch_knobs_are_inert_when_disabled() {
    let mechanisms = [
        Mode::AppOnly,
        Mode::OsOnly,
        Mode::Predict,
        Mode::PredictOpt,
        Mode::FetchAllOpt,
        Mode::FincoreApp,
    ];
    for mode in mechanisms {
        let baseline = run_workload(RuntimeConfig::new(mode));
        let mut tweaked = RuntimeConfig::new(mode);
        tweaked.batch_max_runs = 2;
        tweaked.batch_deadline_ns = 1;
        assert_eq!(
            baseline,
            run_workload(tweaked),
            "{}: batch knobs leaked into the unbatched path",
            mode.label()
        );
    }
}

/// Batched runs are deterministic: the same configuration twice produces
/// byte-identical telemetry.
#[test]
fn batched_run_is_deterministic() {
    let mut config = RuntimeConfig::new(Mode::PredictOpt);
    config.batch_submit = true;
    let first = run_workload(config.clone());
    let second = run_workload(config);
    assert_eq!(first, second);
}

/// A tiny capacity forces size flushes; a generous deadline means none of
/// them are deadline flushes.
#[test]
fn small_capacity_flushes_on_full() {
    let mut config = RuntimeConfig::new(Mode::PredictOpt);
    config.batch_submit = true;
    config.batch_max_runs = 1;
    config.batch_deadline_ns = u64::MAX / 2;
    let runtime = Runtime::new(os(48), config);
    let mut clock = runtime.new_clock();
    let file = runtime
        .create_sized(&mut clock, "/data/full.bin", 32 << 20)
        .unwrap();
    for i in 0..256u64 {
        file.read_charge(&mut clock, i * 16_384, 16_384);
    }
    runtime.flush_prefetch_batches(&mut clock);
    let stats = runtime.stats();
    assert!(stats.batches_flushed.get() > 0, "no batches flushed");
    assert!(
        stats.batch_flush_full.get() > 0,
        "capacity-1 batches must flush full"
    );
    assert_eq!(stats.batch_flush_deadline.get(), 0);
    assert_eq!(
        stats.batches_flushed.get(),
        stats.batch_flush_full.get()
            + stats.batch_flush_deadline.get()
            + stats.batch_flush_explicit.get()
    );
}

/// A one-nanosecond deadline means every batch that survives to the next
/// read-path poll (or push) flushes by deadline, never by size.
#[test]
fn short_deadline_flushes_on_deadline() {
    let mut config = RuntimeConfig::new(Mode::PredictOpt);
    config.batch_submit = true;
    config.batch_max_runs = 1_000_000;
    config.batch_deadline_ns = 1;
    let runtime = Runtime::new(os(48), config);
    let mut clock = runtime.new_clock();
    let file = runtime
        .create_sized(&mut clock, "/data/deadline.bin", 32 << 20)
        .unwrap();
    for i in 0..256u64 {
        file.read_charge(&mut clock, i * 16_384, 16_384);
    }
    runtime.flush_prefetch_batches(&mut clock);
    let stats = runtime.stats();
    assert!(stats.batches_flushed.get() > 0, "no batches flushed");
    assert_eq!(stats.batch_flush_full.get(), 0);
    assert!(
        stats.batch_flush_deadline.get() > 0,
        "deadline flushes expected"
    );
}

/// Device faults on the prefetch class fail individual completions, not
/// the whole batch: the runtime's per-run retry ladder still engages and
/// eventually gives up, and the run itself keeps going.
#[test]
fn partial_batch_failure_feeds_the_retry_ladder() {
    let plan = FaultPlan::seeded(7).with_prefetch_eio(1.0);
    let os = Os::new(
        OsConfig::with_memory_mb(48),
        Device::with_fault_plan(DeviceConfig::local_nvme(), plan),
        FileSystem::new(FsKind::Ext4Like),
    );
    let mut config = RuntimeConfig::new(Mode::PredictOpt);
    config.batch_submit = true;
    let runtime = Runtime::new(os, config);
    let mut clock = runtime.new_clock();
    let file = runtime
        .create_sized(&mut clock, "/data/faulty.bin", 32 << 20)
        .unwrap();
    for i in 0..256u64 {
        file.read_charge(&mut clock, i * 16_384, 16_384);
    }
    runtime.flush_prefetch_batches(&mut clock);
    let stats = runtime.stats();
    assert!(stats.batches_flushed.get() > 0, "no batches flushed");
    assert!(
        stats.prefetch_retries.get() > 0,
        "failed completions must enter the retry ladder"
    );
    assert!(
        stats.prefetch_give_ups.get() > 0 && stats.pages_abandoned.get() > 0,
        "permanent EIO must exhaust the ladder"
    );
    // Reads still complete (demand path is un-faulted).
    assert_eq!(runtime.stats().reads.get(), 256);
}

/// The acceptance criterion: on a sequential stream, batching initiates at
/// least as many pages while paying at least 2x fewer syscall crossings
/// for prefetch submission, at an equal-or-better cache-hit ratio.
///
/// Uses `Predict` (no `relax_limits`): prefetch windows are issued in
/// `ra_max_pages` chunks, so one planned window is many unbatched
/// crossings but a single vectored batch. Under `+opt` relaxation one
/// window is already one crossing and batching is crossing-neutral.
#[test]
fn batching_halves_crossings_at_parity() {
    let run = |batch: bool| {
        let mut config = RuntimeConfig::new(Mode::Predict);
        config.batch_submit = batch;
        let runtime = Runtime::new(os(64), config);
        let mut clock = runtime.new_clock();
        let file = runtime
            .create_sized(&mut clock, "/data/seq.bin", 48 << 20)
            .unwrap();
        for i in 0..768u64 {
            file.read_charge(&mut clock, i * 16_384, 16_384);
        }
        runtime.flush_prefetch_batches(&mut clock);
        let submissions = if batch {
            runtime.os().stats().ra_batch_calls.get()
        } else {
            runtime.os().stats().ra_info_calls.get()
        };
        (
            runtime.stats().pages_initiated.get(),
            submissions,
            RuntimeReport::collect(&runtime).hit_ratio,
        )
    };
    let (unbatched_pages, unbatched_calls, unbatched_hits) = run(false);
    let (batched_pages, batched_calls, batched_hits) = run(true);
    assert!(
        batched_pages >= unbatched_pages,
        "batching lost pages: {batched_pages} < {unbatched_pages}"
    );
    assert!(
        batched_calls * 2 <= unbatched_calls,
        "expected >=2x fewer submission crossings: {batched_calls} vs {unbatched_calls}"
    );
    assert!(
        batched_hits >= unbatched_hits - 0.01,
        "hit ratio regressed: {batched_hits} vs {unbatched_hits}"
    );
}
