//! Batched prefetch submission: off-path byte-identity, flush policy,
//! partial-batch failure, and crossing-count savings.

use crossprefetch::{FlushReason, Mode, Runtime, RuntimeConfig, RuntimeReport, TraceEventKind};
use simos::{Device, DeviceConfig, FaultPlan, FileSystem, FsKind, Os, OsConfig};

fn os(memory_mb: u64) -> std::sync::Arc<Os> {
    Os::new(
        OsConfig::with_memory_mb(memory_mb),
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    )
}

/// A deterministic mixed workload: sequential ramp, warm re-read, random
/// jumps. Returns the runtime's JSON report after draining batches.
fn run_workload(config: RuntimeConfig) -> String {
    let runtime = Runtime::new(os(48), config);
    let mut clock = runtime.new_clock();
    let file = runtime
        .create_sized(&mut clock, "/data/w.bin", 48 << 20)
        .unwrap();
    let chunk = 16 * 1024u64;
    for i in 0..512u64 {
        file.read_charge(&mut clock, i * chunk, chunk);
    }
    for i in 0..64u64 {
        file.read_charge(&mut clock, i * chunk, chunk);
    }
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..128 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        file.read_charge(&mut clock, (state % (47 << 20)) & !4095, chunk);
    }
    runtime.flush_prefetch_batches(&mut clock);
    RuntimeReport::collect(&runtime).to_json()
}

/// All six Table-2 mechanisms: with `batch_submit` off, the batching knobs
/// must be inert — telemetry is byte-identical no matter how they are set.
#[test]
fn batch_knobs_are_inert_when_disabled() {
    let mechanisms = [
        Mode::AppOnly,
        Mode::OsOnly,
        Mode::Predict,
        Mode::PredictOpt,
        Mode::FetchAllOpt,
        Mode::FincoreApp,
    ];
    for mode in mechanisms {
        let baseline = run_workload(RuntimeConfig::new(mode));
        let mut tweaked = RuntimeConfig::new(mode);
        tweaked.batch_max_runs = 2;
        tweaked.batch_deadline_ns = 1;
        assert_eq!(
            baseline,
            run_workload(tweaked),
            "{}: batch knobs leaked into the unbatched path",
            mode.label()
        );
    }
}

/// Batched runs are deterministic: the same configuration twice produces
/// byte-identical telemetry.
#[test]
fn batched_run_is_deterministic() {
    let mut config = RuntimeConfig::new(Mode::PredictOpt);
    config.batch_submit = true;
    let first = run_workload(config.clone());
    let second = run_workload(config);
    assert_eq!(first, second);
}

/// A tiny capacity forces size flushes; a generous deadline means none of
/// them are deadline flushes.
#[test]
fn small_capacity_flushes_on_full() {
    let mut config = RuntimeConfig::new(Mode::PredictOpt);
    config.batch_submit = true;
    config.batch_max_runs = 1;
    config.batch_deadline_ns = u64::MAX / 2;
    let runtime = Runtime::new(os(48), config);
    let mut clock = runtime.new_clock();
    let file = runtime
        .create_sized(&mut clock, "/data/full.bin", 32 << 20)
        .unwrap();
    for i in 0..256u64 {
        file.read_charge(&mut clock, i * 16_384, 16_384);
    }
    runtime.flush_prefetch_batches(&mut clock);
    let stats = runtime.stats();
    assert!(stats.batches_flushed.get() > 0, "no batches flushed");
    assert!(
        stats.batch_flush_full.get() > 0,
        "capacity-1 batches must flush full"
    );
    assert_eq!(stats.batch_flush_deadline.get(), 0);
    assert_eq!(
        stats.batches_flushed.get(),
        stats.batch_flush_full.get()
            + stats.batch_flush_deadline.get()
            + stats.batch_flush_explicit.get()
    );
}

/// A one-nanosecond deadline means every batch that survives to the next
/// read-path poll (or push) flushes by deadline, never by size.
#[test]
fn short_deadline_flushes_on_deadline() {
    let mut config = RuntimeConfig::new(Mode::PredictOpt);
    config.batch_submit = true;
    config.batch_max_runs = 1_000_000;
    config.batch_deadline_ns = 1;
    let runtime = Runtime::new(os(48), config);
    let mut clock = runtime.new_clock();
    let file = runtime
        .create_sized(&mut clock, "/data/deadline.bin", 32 << 20)
        .unwrap();
    for i in 0..256u64 {
        file.read_charge(&mut clock, i * 16_384, 16_384);
    }
    runtime.flush_prefetch_batches(&mut clock);
    let stats = runtime.stats();
    assert!(stats.batches_flushed.get() > 0, "no batches flushed");
    assert_eq!(stats.batch_flush_full.get(), 0);
    assert!(
        stats.batch_flush_deadline.get() > 0,
        "deadline flushes expected"
    );
}

/// The PR 4 polled-deadline starvation regression: a stream that stops
/// issuing reads while a part-full batch is open must still see that
/// batch flush at `opened_ns + deadline_ns` — the reactor timer firing at
/// the batch's own due time — not sit staged until some much later event
/// happens to poll the queue.
#[test]
fn idle_stream_flushes_at_the_deadline() {
    let deadline = 10_000_000u64; // 10 ms: longer than the whole ramp
    let mut config = RuntimeConfig::new(Mode::Predict);
    config.batch_submit = true;
    config.batch_max_runs = 1_000_000; // never flush by size
    config.batch_deadline_ns = deadline;
    let runtime = Runtime::new(os(48), config);
    runtime.trace().set_enabled(true);
    let mut clock = runtime.new_clock();
    let file = runtime
        .create_sized(&mut clock, "/data/idle.bin", 32 << 20)
        .unwrap();
    // Sequential ramp: the predictor plans prefetch and stages runs. The
    // deadline outlives the ramp, so the batch is still open (part-full)
    // when the stream goes idle.
    for i in 0..64u64 {
        file.read_charge(&mut clock, i * 16_384, 16_384);
    }
    let stalled_ns = clock.now();
    assert!(
        stalled_ns < deadline,
        "ramp must finish inside the deadline window for this regression"
    );
    assert_eq!(
        runtime.stats().batches_flushed.get(),
        0,
        "the batch must still be open when the stream stalls"
    );

    // The stream is idle. Much later, the next pump of the reactor finds
    // the batch long overdue — and must fire it at its *own* due time.
    clock.advance(50 * deadline);
    runtime.flush_prefetch_batches(&mut clock);

    let stats = runtime.stats();
    assert!(
        stats.batch_flush_deadline.get() > 0,
        "idle batch must flush by deadline"
    );
    assert_eq!(
        stats.batch_flush_explicit.get(),
        0,
        "the overdue batch belongs to the timer, not the explicit drain"
    );
    let deadline_flush_ts: Vec<u64> = runtime
        .trace()
        .snapshot()
        .iter()
        .filter_map(|e| match e.kind {
            TraceEventKind::BatchFlushed {
                reason: FlushReason::Deadline,
                ..
            } => Some(e.ts_ns),
            _ => None,
        })
        .collect();
    assert!(!deadline_flush_ts.is_empty(), "flush must be traced");
    for ts in deadline_flush_ts {
        assert!(
            ts <= stalled_ns + deadline,
            "deadline flush stamped at {ts} ns, after its due time \
             (stalled at {stalled_ns} ns, deadline {deadline} ns)"
        );
    }
}

/// Device faults on the prefetch class fail individual completions, not
/// the whole batch: the runtime's per-run retry ladder still engages and
/// eventually gives up, and the run itself keeps going.
#[test]
fn partial_batch_failure_feeds_the_retry_ladder() {
    let plan = FaultPlan::seeded(7).with_prefetch_eio(1.0);
    let os = Os::new(
        OsConfig::with_memory_mb(48),
        Device::with_fault_plan(DeviceConfig::local_nvme(), plan),
        FileSystem::new(FsKind::Ext4Like),
    );
    let mut config = RuntimeConfig::new(Mode::PredictOpt);
    config.batch_submit = true;
    let runtime = Runtime::new(os, config);
    let mut clock = runtime.new_clock();
    let file = runtime
        .create_sized(&mut clock, "/data/faulty.bin", 32 << 20)
        .unwrap();
    for i in 0..256u64 {
        file.read_charge(&mut clock, i * 16_384, 16_384);
    }
    runtime.flush_prefetch_batches(&mut clock);
    let stats = runtime.stats();
    assert!(stats.batches_flushed.get() > 0, "no batches flushed");
    assert!(
        stats.prefetch_retries.get() > 0,
        "failed completions must enter the retry ladder"
    );
    assert!(
        stats.prefetch_give_ups.get() > 0 && stats.pages_abandoned.get() > 0,
        "permanent EIO must exhaust the ladder"
    );
    // Reads still complete (demand path is un-faulted).
    assert_eq!(runtime.stats().reads.get(), 256);
}

/// The acceptance criterion: on a sequential stream, batching initiates at
/// least as many pages while paying at least 2x fewer syscall crossings
/// for prefetch submission, at an equal-or-better cache-hit ratio.
///
/// Uses `Predict` (no `relax_limits`): prefetch windows are issued in
/// `ra_max_pages` chunks, so one planned window is many unbatched
/// crossings but a single vectored batch. Under `+opt` relaxation one
/// window is already one crossing and batching is crossing-neutral.
#[test]
fn batching_halves_crossings_at_parity() {
    let run = |batch: bool| {
        let mut config = RuntimeConfig::new(Mode::Predict);
        config.batch_submit = batch;
        let runtime = Runtime::new(os(64), config);
        let mut clock = runtime.new_clock();
        let file = runtime
            .create_sized(&mut clock, "/data/seq.bin", 48 << 20)
            .unwrap();
        for i in 0..768u64 {
            file.read_charge(&mut clock, i * 16_384, 16_384);
        }
        runtime.flush_prefetch_batches(&mut clock);
        let submissions = if batch {
            runtime.os().stats().ra_batch_calls.get()
        } else {
            runtime.os().stats().ra_info_calls.get()
        };
        (
            runtime.stats().pages_initiated.get(),
            submissions,
            RuntimeReport::collect(&runtime).hit_ratio,
        )
    };
    let (unbatched_pages, unbatched_calls, unbatched_hits) = run(false);
    let (batched_pages, batched_calls, batched_hits) = run(true);
    // Deadline batches flush at their own due time (the reactor timer), so
    // batch boundaries shift against the demand stream by a flush or two
    // over the run: allow 1% page drift instead of exact parity.
    assert!(
        batched_pages * 100 >= unbatched_pages * 99,
        "batching lost pages: {batched_pages} < {unbatched_pages}"
    );
    // A late push no longer rides inside an already-expired batch (that
    // batch flushed at its deadline; the push opens a fresh one), which
    // costs a couple of extra crossings over the run — hence the small
    // slack on the 2x criterion.
    assert!(
        batched_calls * 2 <= unbatched_calls + 8,
        "expected ~2x fewer submission crossings: {batched_calls} vs {unbatched_calls}"
    );
    assert!(
        batched_hits >= unbatched_hits - 0.01,
        "hit ratio regressed: {batched_hits} vs {unbatched_hits}"
    );
}
