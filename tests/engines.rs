//! Pluggable prediction engines: knob inertness under the strided
//! default, per-engine determinism, and closed-loop prefetch-quality
//! accounting.

use crossprefetch::{EngineKind, Mode, Runtime, RuntimeConfig, RuntimeReport, SEQ_BATCH_PAGES};
use simos::{Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig};
use workloads::{run_kvprobe, setup_kvprobe, KvProbeConfig};

fn os(memory_mb: u64) -> std::sync::Arc<Os> {
    Os::new(
        OsConfig::with_memory_mb(memory_mb),
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    )
}

const MECHANISMS: [Mode; 6] = [
    Mode::AppOnly,
    Mode::OsOnly,
    Mode::Predict,
    Mode::PredictOpt,
    Mode::FetchAllOpt,
    Mode::FincoreApp,
];

/// The same deterministic mixed workload the batching inertness test
/// drives: sequential ramp, warm re-read, random jumps.
fn run_mixed_workload(config: RuntimeConfig) -> String {
    let runtime = Runtime::new(os(48), config);
    let mut clock = runtime.new_clock();
    let file = runtime
        .create_sized(&mut clock, "/data/w.bin", 48 << 20)
        .unwrap();
    let chunk = 16 * 1024u64;
    for i in 0..512u64 {
        file.read_charge(&mut clock, i * chunk, chunk);
    }
    for i in 0..64u64 {
        file.read_charge(&mut clock, i * chunk, chunk);
    }
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..128 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        file.read_charge(&mut clock, (state % (47 << 20)) & !4095, chunk);
    }
    runtime.flush_prefetch_batches(&mut clock);
    RuntimeReport::collect(&runtime).to_json()
}

/// With the default `Strided` engine selected, every correlation and
/// adaptive knob must be inert: telemetry stays byte-identical across all
/// six Table-2 mechanisms no matter how they are set.
#[test]
fn engine_knobs_are_inert_under_strided() {
    for mode in MECHANISMS {
        let baseline = run_mixed_workload(RuntimeConfig::new(mode));
        let mut tweaked = RuntimeConfig::new(mode);
        tweaked.correlation_history = 16;
        tweaked.correlation_max_assocs = 8;
        tweaked.correlation_mine_interval = 2;
        tweaked.correlation_min_support = 1;
        tweaked.correlation_max_span_pages = 1;
        tweaked.adaptive_sample_interval = 1;
        tweaked.adaptive_duel_window = 2;
        tweaked.adaptive_shadow_capacity = 4;
        assert_eq!(
            baseline,
            run_mixed_workload(tweaked),
            "{}: engine knobs leaked into the strided path",
            mode.label()
        );
    }
}

/// Selecting a non-strided engine on a mode that never consults a
/// predictor resolves back to strided: the knob cannot perturb
/// non-predicting mechanisms.
#[test]
fn engine_selection_is_inert_without_predict() {
    for mode in [
        Mode::AppOnly,
        Mode::OsOnly,
        Mode::FetchAllOpt,
        Mode::FincoreApp,
    ] {
        let baseline = run_mixed_workload(RuntimeConfig::new(mode));
        for engine in [EngineKind::Correlation, EngineKind::Adaptive] {
            let mut tweaked = RuntimeConfig::new(mode);
            tweaked.engine = engine;
            assert_eq!(
                baseline,
                run_mixed_workload(tweaked),
                "{}: engine {} leaked into a non-predicting mode",
                mode.label(),
                engine.name()
            );
        }
    }
}

/// One-page reads at a 16 KiB stride: each read leaves a 3-page gap, so
/// the stream is sequential-ish under the default 32-page batch window
/// and random under a 1-page window.
fn run_gapped_stride_workload(config: RuntimeConfig) -> String {
    let runtime = Runtime::new(os(48), config);
    let mut clock = runtime.new_clock();
    let file = runtime
        .create_sized(&mut clock, "/data/s.bin", 48 << 20)
        .unwrap();
    for i in 0..1024u64 {
        file.read_charge(&mut clock, i * 16 * 1024, 4096);
    }
    runtime.flush_prefetch_batches(&mut clock);
    RuntimeReport::collect(&runtime).to_json()
}

/// The lifted `seq_batch_pages` knob: an explicit default is
/// byte-identical to the implicit one (the lift changed nothing), and a
/// non-default value actually changes behaviour (the knob is live, not
/// decorative).
#[test]
fn seq_batch_pages_default_is_identical_and_knob_is_live() {
    for mode in [Mode::Predict, Mode::PredictOpt] {
        let baseline = run_mixed_workload(RuntimeConfig::new(mode));
        let mut explicit = RuntimeConfig::new(mode);
        explicit.seq_batch_pages = SEQ_BATCH_PAGES;
        assert_eq!(baseline, run_mixed_workload(explicit));

        let strided = run_gapped_stride_workload(RuntimeConfig::new(mode));
        let mut narrow = RuntimeConfig::new(mode);
        narrow.seq_batch_pages = 1;
        assert_ne!(
            strided,
            run_gapped_stride_workload(narrow),
            "{}: a one-page batch window should classify the 3-page gaps as random",
            mode.label()
        );
    }
}

fn kvprobe_json(engine: EngineKind, seed: u64) -> String {
    let o = os(64);
    let mut config = RuntimeConfig::new(Mode::Predict);
    config.engine = engine;
    let runtime = Runtime::new(o, config);
    let cfg = KvProbeConfig {
        probes: 1024,
        seed,
        ..KvProbeConfig::default()
    };
    setup_kvprobe(&runtime, &cfg, "/kv");
    let mut clock = runtime.new_clock();
    run_kvprobe(&runtime, &mut clock, &cfg, "/kv");
    RuntimeReport::collect(&runtime).to_json()
}

/// Same-seed zipfian runs diff clean for every engine — the correlation
/// miner and the adaptive duel are as deterministic as the strided
/// counter.
#[test]
fn same_seed_runs_are_identical_for_every_engine() {
    for engine in EngineKind::all() {
        let first = kvprobe_json(engine, 7);
        let second = kvprobe_json(engine, 7);
        assert_eq!(first, second, "{}: same-seed divergence", engine.name());
        assert!(
            first.contains(&format!("\"selected\":\"{}\"", engine.name())),
            "{}: telemetry should name the selected engine",
            engine.name()
        );
    }
}

/// Closed-loop quality accounting: after a zipfian run plus a cache drop,
/// every initiated prefetch page has been classified exactly once —
/// timely + late + wasted sums to `pages_initiated` — for each engine.
///
/// `Mode::Predict` silences the OS heuristic readahead and does no
/// open-time prefetch, so the runtime's own prefetch paths are the only
/// source of speculative pages; dropping the cache at the end converts
/// still-speculative pages to wasted, closing the books.
#[test]
fn quality_counters_sum_to_pages_initiated_for_every_engine() {
    for engine in EngineKind::all() {
        // 8 MB of memory against an 18 MiB dataset: eviction keeps cold
        // pages uncached, so planned prefetches actually issue (and the
        // stale-view watchdog resyncs the user-level tree, re-enabling
        // prefetches of previously-read pages).
        let o = os(8);
        let mut config = RuntimeConfig::new(Mode::Predict);
        config.engine = engine;
        let runtime = Runtime::new(o, config);
        let cfg = KvProbeConfig {
            probes: 2048,
            ..KvProbeConfig::default()
        };
        setup_kvprobe(&runtime, &cfg, "/kv");
        let mut clock = runtime.new_clock();
        run_kvprobe(&runtime, &mut clock, &cfg, "/kv");
        runtime.os().drop_caches(&mut clock);
        let report = RuntimeReport::collect(&runtime);
        let q = report.prefetch_quality;
        assert!(
            report.pages_initiated > 0,
            "{}: the probe stream should trigger prefetching",
            engine.name()
        );
        assert_eq!(
            q.timely + q.late + q.wasted,
            report.pages_initiated,
            "{}: quality books don't balance (timely={} late={} wasted={} initiated={})",
            engine.name(),
            q.timely,
            q.late,
            q.wasted,
            report.pages_initiated
        );
    }
}

/// The correlation and adaptive engines leave fingerprints in the new
/// telemetry section; the strided default leaves it at zero.
#[test]
fn engine_counters_track_the_selected_engine() {
    let strided = kvprobe_json(EngineKind::Strided, 11);
    assert!(strided.contains("\"assoc_runs\":0,"));
    assert!(strided.contains("\"mining_passes\":0,"));

    let o = os(64);
    let mut config = RuntimeConfig::new(Mode::Predict);
    config.engine = EngineKind::Adaptive;
    let runtime = Runtime::new(o, config);
    let cfg = KvProbeConfig {
        probes: 2048,
        seed: 11,
        ..KvProbeConfig::default()
    };
    setup_kvprobe(&runtime, &cfg, "/kv");
    let mut clock = runtime.new_clock();
    run_kvprobe(&runtime, &mut clock, &cfg, "/kv");
    let stats = runtime.stats();
    assert!(stats.engine_mining_passes.get() > 0);
    assert!(
        stats.engine_duels.get() > 0,
        "the adaptive engine should close duel windows on a 2048-probe run"
    );
}
