//! Multi-"process" tests: several CROSS-LIB runtimes (one per simulated
//! process, as in the paper's multi-instance Filebench runs) sharing one
//! OS, memory budget, and device.

use crossprefetch::{Mode, Runtime};
use simos::{Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig, PAGE_SIZE};
use std::sync::Arc;

fn boot(memory_mb: u64) -> Arc<Os> {
    Os::new(
        OsConfig::with_memory_mb(memory_mb),
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    )
}

#[test]
fn runtimes_share_the_page_cache() {
    let os = boot(256);
    let producer = Runtime::with_mode(Arc::clone(&os), Mode::PredictOpt);
    let consumer = Runtime::with_mode(Arc::clone(&os), Mode::OsOnly);

    let mut clock = producer.new_clock();
    let file = producer
        .create_sized(&mut clock, "/ipc/blob", 8 << 20)
        .unwrap();
    for i in 0..128u64 {
        file.read_charge(&mut clock, i * 64 * 1024, 64 * 1024);
    }

    // A different runtime ("process") reading the same file hits the
    // shared OS cache.
    let mut clock2 = consumer.new_clock();
    let file2 = consumer.open(&mut clock2, "/ipc/blob").unwrap();
    let outcome = file2.read_charge(&mut clock2, 0, 4 << 20);
    assert_eq!(
        outcome.miss_pages, 0,
        "second process must hit shared cache"
    );
}

#[test]
fn runtimes_have_independent_prefetch_state() {
    let os = boot(256);
    let a = Runtime::with_mode(Arc::clone(&os), Mode::PredictOpt);
    let b = Runtime::with_mode(Arc::clone(&os), Mode::PredictOpt);

    let mut clock = a.new_clock();
    let file_a = a.create_sized(&mut clock, "/p/a", 16 << 20).unwrap();
    for i in 0..256u64 {
        file_a.read_charge(&mut clock, i * 16 * 1024, 16 * 1024);
    }
    assert!(a.stats().pages_initiated.get() > 0);
    // Runtime B never touched anything: its counters stay zero.
    assert_eq!(b.stats().reads.get(), 0);
    assert_eq!(b.stats().pages_initiated.get(), 0);
    assert_eq!(b.lib_lock_wait_ns(), 0);
}

#[test]
fn mixed_mechanisms_coexist_under_memory_pressure() {
    // One aggressive CrossPrefetch process and one plain OSonly process
    // compete for a small budget; accounting must stay exact and both
    // must make progress.
    let os = boot(24);
    let crossp = Runtime::with_mode(Arc::clone(&os), Mode::PredictOpt);
    let plain = Runtime::with_mode(Arc::clone(&os), Mode::OsOnly);
    {
        let c = os.new_clock();
        os.fs().create_sized("/mix/a", 32 << 20).unwrap();
        os.fs().create_sized("/mix/b", 32 << 20).unwrap();
        let _ = c.now();
    }

    let results: Vec<u64> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (rt, path) in [(crossp.clone(), "/mix/a"), (plain.clone(), "/mix/b")] {
            handles.push(scope.spawn(move || {
                let mut clock = rt.new_clock();
                let file = rt.open(&mut clock, path).unwrap();
                let mut miss = 0u64;
                for i in 0..512u64 {
                    miss += file
                        .read_charge(&mut clock, i * 64 * 1024, 64 * 1024)
                        .miss_pages;
                }
                miss
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert!(os.mem().resident() <= os.mem().budget());
    // Both processes completed their streams (misses bounded by file size).
    for miss in results {
        assert!(miss <= (32 << 20) / PAGE_SIZE);
    }
    // Global accounting agrees with per-inode accounting.
    let total: u64 = os
        .all_caches()
        .iter()
        .map(|c| c.state.read().resident())
        .sum();
    assert_eq!(total, os.mem().resident());
}

#[test]
fn per_process_eviction_does_not_corrupt_other_processes() {
    let os = boot(32);
    let evicting = Runtime::with_mode(Arc::clone(&os), Mode::PredictOpt);
    let victim_rt = Runtime::with_mode(Arc::clone(&os), Mode::OsOnly);

    let mut vclock = victim_rt.new_clock();
    let victim_file = victim_rt
        .create_sized(&mut vclock, "/vp/data", 4 << 20)
        .unwrap();
    let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    victim_file.write(&mut vclock, 0, &payload);

    // The aggressive process churns through memory, forcing eviction of
    // the victim's cached pages.
    let mut clock = evicting.new_clock();
    for f in 0..4 {
        let file = evicting
            .create_sized(&mut clock, &format!("/vp/churn{f}"), 16 << 20)
            .unwrap();
        for i in 0..256u64 {
            file.read_charge(&mut clock, i * 64 * 1024, 64 * 1024);
        }
    }

    // Victim data survives (content durability is independent of cache).
    let back = victim_file.read(&mut vclock, 0, payload.len() as u64);
    assert_eq!(back, payload);
}
