//! Registry-contention smoke: sharding must beat the single lock.
//!
//! Eight host threads churning opens, reads, and closes all cross three
//! key→object registries (CROSS-LIB per-file state, CROSS-OS inode
//! caches, CROSS-OS fd table). With one shard that traffic serializes on
//! a single lock; with many shards it spreads. The accounting records
//! *wall-clock* wait on *contended* acquisitions only, so:
//!
//! * one thread must observe exactly zero wait (timing neutrality), and
//! * at eight threads, the worst per-shard wait of a sharded registry
//!   must stay strictly below the single-lock baseline's wait.
//!
//! Span tracing runs throughout: registry waits are wall-clock and live
//! outside an exemplar's virtual-time bucket sum, but each exemplar
//! snapshots the wait delta over its in-flight window, so a contended
//! run must crown a most-contended exemplar (and a single-threaded run
//! must not).
//!
//! Wall-clock measurements are noisy; the test scales the workload up
//! until the single-lock baseline shows unambiguous contention before
//! asserting. Telemetry sidecars (`BENCH_contention_*.json`) go wherever
//! `CP_BENCH_TELEMETRY_DIR` points, plus `CARGO_TARGET_TMPDIR` so the
//! test can verify the export itself.

use std::path::Path;
use std::sync::Arc;
use std::thread;

use cp_bench::{telemetry_sidecar, write_sidecar};
use crossprefetch::{Mode, Runtime, RuntimeConfig};
use simos::{Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig};

fn boot(shards: usize) -> Arc<Os> {
    let mut config = OsConfig::with_memory_mb(256);
    config.registry_shards = shards;
    Os::new(
        config,
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    )
}

/// Open/read/close churn from `threads` host threads against a registry
/// with `shards` shards (both layers). Every iteration inserts into the
/// CROSS-LIB file registry and the OS cache registry, and cycles one
/// extra descriptor through the fd table.
fn churn(threads: usize, shards: usize, iters: usize, tag: &str) -> (Runtime, Arc<Os>) {
    let os = boot(shards);
    let mut config = RuntimeConfig::new(Mode::Predict);
    config.registry_shards = shards;
    let rt = Runtime::new(Arc::clone(&os), config);
    // Span tracing rides along: each exemplar snapshots the wall-clock
    // registry-wait delta over its in-flight window, so the contention
    // this test provokes must show up attributed to individual reads.
    rt.spans().set_enabled(true);
    thread::scope(|s| {
        for t in 0..threads {
            let rt = rt.clone();
            let os = Arc::clone(&os);
            let tag = tag.to_string();
            s.spawn(move || {
                let mut clock = rt.new_clock();
                for i in 0..iters {
                    let path = format!("/{tag}/t{t}/f{i}");
                    let file = rt.create_sized(&mut clock, &path, 64 * 1024).unwrap();
                    file.read_charge(&mut clock, 0, 16 * 1024);
                    let extra = os.open(&mut clock, &path).unwrap();
                    os.close(&mut clock, extra);
                }
            });
        }
    });
    (rt, os)
}

/// Total contended wall-clock wait across all three registries.
fn total_wait_ns(rt: &Runtime, os: &Os) -> u64 {
    rt.file_registry_stats().total_wait_ns()
        + os.cache_registry_stats().total_wait_ns()
        + os.fd_registry_stats().total_wait_ns()
}

/// Worst single-shard wall-clock wait across all three registries.
fn max_shard_wait_ns(rt: &Runtime, os: &Os) -> u64 {
    [
        rt.file_registry_stats(),
        os.cache_registry_stats(),
        os.fd_registry_stats(),
    ]
    .iter()
    .flat_map(|stats| stats.per_shard_wait_ns.iter().copied())
    .max()
    .unwrap_or(0)
}

#[test]
fn contention_smoke_1_and_8_threads() {
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR"));

    // 1 thread: no contention exists, so no wait may be recorded — this
    // is the invariant that keeps shard accounting out of the simulated
    // timeline.
    let (rt1, os1) = churn(1, 1, 192, "single");
    assert_eq!(
        total_wait_ns(&rt1, &os1),
        0,
        "single-threaded run recorded registry lock wait"
    );
    // The same invariant through the span lens: no exemplar's in-flight
    // window may carry registry wait, and no read may be crowned most
    // contended.
    for exemplar in rt1.spans().exemplars() {
        assert_eq!(
            exemplar.registry_wait_ns, 0,
            "single-threaded exemplar carries registry wait"
        );
    }
    assert!(
        rt1.spans().most_contended().is_none(),
        "single-threaded run produced a most-contended exemplar"
    );
    telemetry_sidecar("contention_t1", &rt1);
    write_sidecar(tmp, "contention_t1", &rt1);

    // 8 threads, single lock vs sharded. Scale until the baseline shows
    // real blocking (≥50 µs of wall-clock wait) so the comparison is not
    // a coin flip on scheduler noise.
    let mut iters = 192;
    let mut last = (0u64, 0u64);
    for _attempt in 0..6 {
        let (rt_base, os_base) = churn(8, 1, iters, "base");
        let base_total = total_wait_ns(&rt_base, &os_base);
        let (rt_shard, os_shard) = churn(8, 16, iters, "shard");
        let shard_max = max_shard_wait_ns(&rt_shard, &os_shard);
        last = (base_total, shard_max);
        // Contended runs must also surface the blocking through the span
        // subsystem: some read's in-flight window overlapped the waits.
        let attributed = rt_base.spans().most_contended();
        if let (true, Some(hot)) = (base_total >= 50_000 && shard_max < base_total, attributed) {
            assert!(
                hot.registry_wait_ns > 0,
                "most-contended exemplar must carry nonzero registry wait"
            );
            telemetry_sidecar("contention_t8_single_lock", &rt_base);
            telemetry_sidecar("contention_t8_sharded", &rt_shard);
            write_sidecar(tmp, "contention_t8_single_lock", &rt_base);
            write_sidecar(tmp, "contention_t8_sharded", &rt_shard);
            // The sidecar export carries the per-shard accounting.
            let json =
                std::fs::read_to_string(tmp.join("BENCH_contention_t8_sharded.json")).unwrap();
            assert!(json.contains("\"registries\""));
            assert!(json.contains("\"per_shard_wait_ns\""));
            return;
        }
        iters *= 2;
    }
    panic!(
        "sharded registries never separated from the single-lock baseline \
         (or spans never attributed the wait to a read): \
         baseline wait {} ns, worst sharded shard {} ns",
        last.0, last.1
    );
}
