//! Property-based tests over the core data structures and invariants.

use crossprefetch::{BPlusRangeIndex, Direction, LockScope, Mode, Predictor, RangeTree, Runtime};
use proptest::prelude::*;
use simclock::{CostModel, FcfsResource, GlobalClock, ThreadClock};
use simos::{Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig};
use std::collections::HashSet;
use std::sync::Arc;

fn clock() -> ThreadClock {
    ThreadClock::new(Arc::new(GlobalClock::new()))
}

proptest! {
    // ---- virtual-time resources ------------------------------------------

    #[test]
    fn fcfs_never_overlaps_service(requests in prop::collection::vec((0u64..10_000, 1u64..500), 1..64)) {
        let server = FcfsResource::new("prop");
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for (now, service) in requests {
            let access = server.access(now, service);
            prop_assert!(access.start_ns >= now);
            prop_assert_eq!(access.end_ns - access.start_ns, service);
            intervals.push((access.start_ns, access.end_ns));
        }
        intervals.sort();
        for pair in intervals.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].0, "service intervals overlap");
        }
    }

    #[test]
    fn fcfs_busy_equals_total_service(requests in prop::collection::vec((0u64..10_000, 1u64..500), 1..64)) {
        let server = FcfsResource::new("prop");
        let total: u64 = requests.iter().map(|r| r.1).sum();
        for (now, service) in requests {
            server.access(now, service);
        }
        prop_assert_eq!(server.busy_ns(), total);
    }

    // ---- predictor ---------------------------------------------------------

    #[test]
    fn predictor_counter_stays_in_range(accesses in prop::collection::vec((0u64..100_000, 1u64..32), 1..200), bits in 1u32..=5) {
        let mut p = Predictor::new(bits);
        for (page, count) in accesses {
            let pred = p.on_access(page, count, true, 16384);
            prop_assert!(p.counter() <= p.max_count());
            prop_assert!(pred.prefetch_pages <= 16384);
        }
    }

    #[test]
    fn predictor_prefetch_respects_cap(accesses in prop::collection::vec(0u64..1_000, 1..100), cap in 1u64..64) {
        let mut p = Predictor::new(3);
        for page in accesses {
            let pred = p.on_access(page, 4, true, cap);
            prop_assert!(pred.prefetch_pages <= cap);
        }
    }

    #[test]
    fn backward_run_reaching_page_zero_stays_backward(stride in 4u64..32, steps in 2u64..8, extra in 1u64..=32) {
        // A descending scan whose final access lands on page 0. The old
        // direction vote subtracted `count` from the previous *end* and
        // clamped at zero, so the head-of-file access looked like a
        // reversal and flipped the stream to Forward.
        let mut p = Predictor::new(3);
        for i in (1..=steps).rev() {
            p.on_access(i * stride, stride, false, 16_384);
        }
        let pred = p.on_access(0, stride + extra, false, 16_384);
        prop_assert_eq!(pred.direction, Direction::Backward);
    }

    #[test]
    fn rereads_at_file_head_stay_forward(count in 1u64..=32, reps in 2u64..16) {
        // Re-reading the same head-of-file range is not a backward scan.
        let mut p = Predictor::new(3);
        let mut pred = p.on_access(0, count, false, 16_384);
        for _ in 0..reps {
            pred = p.on_access(0, count, false, 16_384);
        }
        prop_assert_eq!(pred.direction, Direction::Forward);
    }

    // ---- range tree ----------------------------------------------------------

    #[test]
    fn range_tree_matches_reference_set(ops in prop::collection::vec((0u64..4096, 1u64..128, prop::bool::ANY), 1..60)) {
        let tree = RangeTree::new();
        let costs = CostModel::default();
        let mut clk = clock();
        let mut reference: HashSet<u64> = HashSet::new();
        for (start, len, is_clear) in ops {
            if is_clear {
                tree.clear(&mut clk, &costs, LockScope::PerNode);
                reference.clear();
            } else {
                tree.mark_cached(&mut clk, &costs, LockScope::PerNode, start, start + len);
                reference.extend(start..start + len);
            }
        }
        prop_assert_eq!(tree.resident(), reference.len() as u64);
        // Missing ranges must be exactly the complement.
        let missing = tree.missing_in(&mut clk, &costs, LockScope::PerNode, 0, 5000);
        let missing_pages: u64 = missing.iter().map(|&(s, e)| e - s).sum();
        let reference_in_range = reference.iter().filter(|&&p| p < 5000).count() as u64;
        prop_assert_eq!(missing_pages, 5000 - reference_in_range);
        for (s, e) in missing {
            for p in s..e {
                prop_assert!(!reference.contains(&p), "page {p} wrongly missing");
            }
        }
    }

    // ---- B+ range index -------------------------------------------------------

    #[test]
    fn bplus_matches_reference_set(ops in prop::collection::vec((0u64..4096, 1u64..128, prop::bool::ANY), 1..60)) {
        let tree = BPlusRangeIndex::new();
        let costs = CostModel::default();
        let mut clk = clock();
        let mut reference: HashSet<u64> = HashSet::new();
        for (start, len, is_clear) in ops {
            if is_clear {
                tree.clear(&mut clk, &costs, LockScope::PerNode);
                reference.clear();
            } else {
                tree.mark_cached(&mut clk, &costs, LockScope::PerNode, start, start + len);
                reference.extend(start..start + len);
            }
            // Split/merge structural invariants must hold after every op,
            // not just at quiescence.
            tree.check_invariants();
        }
        prop_assert_eq!(tree.resident(), reference.len() as u64);
        let missing = tree.missing_in(&mut clk, &costs, LockScope::PerNode, 0, 5000);
        let missing_pages: u64 = missing.iter().map(|&(s, e)| e - s).sum();
        let reference_in_range = reference.iter().filter(|&&p| p < 5000).count() as u64;
        prop_assert_eq!(missing_pages, 5000 - reference_in_range);
        for (s, e) in missing {
            for p in s..e {
                prop_assert!(!reference.contains(&p), "page {p} wrongly missing");
            }
        }
    }

    #[test]
    fn flat_and_bplus_agree_and_tick_identically(ops in prop::collection::vec((0u64..6000, 1u64..600, 0u8..4, prop::bool::ANY), 1..50)) {
        // The charging-parity contract as a property: any single-threaded
        // op mix leaves both indexes with the same answers AND the same
        // virtual clock, under either lock scope.
        let flat = RangeTree::new();
        let bplus = BPlusRangeIndex::new();
        let costs = CostModel::default();
        let mut cf = clock();
        let mut cb = clock();
        for (start, len, op, whole_file) in ops {
            let scope = if whole_file { LockScope::WholeFile } else { LockScope::PerNode };
            let (a, b) = (start, start + len);
            match op {
                0 | 1 => {
                    let nf = flat.mark_cached(&mut cf, &costs, scope, a, b);
                    let nb = bplus.mark_cached(&mut cb, &costs, scope, a, b);
                    prop_assert_eq!(nf, nb);
                }
                2 => {
                    let mf = flat.missing_in(&mut cf, &costs, scope, a, b);
                    let mb = bplus.missing_in(&mut cb, &costs, scope, a, b);
                    prop_assert_eq!(mf, mb);
                }
                _ => {
                    let df = flat.clear(&mut cf, &costs, scope);
                    let db = bplus.clear(&mut cb, &costs, scope);
                    prop_assert_eq!(df, db);
                }
            }
            prop_assert_eq!(cf.now(), cb.now(), "virtual clocks diverged");
        }
        prop_assert_eq!(flat.resident(), bplus.resident());
        prop_assert_eq!(flat.lock_wait_ns(), 0);
        prop_assert_eq!(bplus.lock_wait_ns(), 0);
        bplus.check_invariants();
    }

    // ---- OS cache accounting ---------------------------------------------------

    #[test]
    fn os_resident_never_exceeds_budget(reads in prop::collection::vec((0u64..256, 1u64..64), 1..80)) {
        let os = Os::new(
            OsConfig::with_memory_mb(4),
            Device::new(DeviceConfig::local_nvme()),
            FileSystem::new(FsKind::Ext4Like),
        );
        let mut clk = os.new_clock();
        let fd = os.create_sized(&mut clk, "/p", 64 << 20).unwrap();
        for (page, count) in reads {
            os.read_charge(&mut clk, fd, page * 4096 * 16, count * 4096);
        }
        prop_assert!(os.mem().resident() <= os.mem().budget());
        // Per-inode residency must agree with global accounting.
        let cache = os.cache(os.fd_inode(fd));
        prop_assert_eq!(cache.state.read().resident(), os.mem().resident());
    }

    #[test]
    fn os_read_outcome_accounts_every_page(offset in 0u64..(8 << 20), len in 1u64..(1 << 20)) {
        let os = Os::new(
            OsConfig::with_memory_mb(64),
            Device::new(DeviceConfig::local_nvme()),
            FileSystem::new(FsKind::Ext4Like),
        );
        let mut clk = os.new_clock();
        let fd = os.create_sized(&mut clk, "/p", 16 << 20).unwrap();
        let outcome = os.read_charge(&mut clk, fd, offset, len);
        prop_assert_eq!(outcome.hit_pages + outcome.miss_pages, outcome.pages);
        prop_assert!(outcome.bytes <= len);
    }

    // ---- runtime content integrity ---------------------------------------------

    #[test]
    fn shim_write_read_round_trip(offset in 0u64..100_000, data in prop::collection::vec(any::<u8>(), 1..4096)) {
        let os = Os::new(
            OsConfig::with_memory_mb(32),
            Device::new(DeviceConfig::local_nvme()),
            FileSystem::new(FsKind::Ext4Like),
        );
        let rt = Runtime::with_mode(os, Mode::PredictOpt);
        let mut clk = rt.new_clock();
        let file = rt.create(&mut clk, "/p").unwrap();
        file.write(&mut clk, offset, &data);
        prop_assert_eq!(file.read(&mut clk, offset, data.len() as u64), data);
    }

    // ---- snappy codec -------------------------------------------------------------

    #[test]
    fn snappy_round_trips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..20_000)) {
        let packed = workloads::compress(&data);
        prop_assert_eq!(workloads::decompress(&packed).unwrap(), data);
    }

    #[test]
    fn snappy_round_trips_repetitive_bytes(unit in prop::collection::vec(any::<u8>(), 1..40), reps in 1usize..500) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let packed = workloads::compress(&data);
        prop_assert_eq!(workloads::decompress(&packed).unwrap(), data);
    }

    // ---- zipfian ---------------------------------------------------------------------

    #[test]
    fn zipfian_stays_in_range(n in 1u64..1_000_000, seed in any::<u64>()) {
        use rand::SeedableRng;
        let zipf = workloads::Zipfian::new(n, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(zipf.sample(&mut rng) < n);
        }
    }
}
