//! Seeded multi-thread stress for the B+ range index.
//!
//! Two properties that must survive eight host threads hammering one
//! shared index:
//!
//! * **Same-seed determinism of the page set.** For a mark-only workload
//!   the final cached-page set is the union of every marked range, which
//!   is independent of thread interleaving — so two runs with the same
//!   seed must report the identical `(resident, missing_in)` answer, and
//!   it must match a single-threaded reference replay. (Leaf *geometry* —
//!   who split where — legitimately depends on interleaving and is not
//!   asserted; the structural invariants are checked instead.)
//! * **Invariants and accounting under mixed ops.** With clears in the
//!   mix the final page set depends on interleaving, but the B+ structure
//!   must stay well-formed and `resident` must equal the page-count
//!   complement of `missing_in` at quiescence.

use std::sync::Arc;
use std::thread;

use crossprefetch::{BPlusRangeIndex, LockScope, RangeIndex, RangeTree};
use simclock::{CostModel, GlobalClock, ThreadClock};

const THREADS: u64 = 8;
const OPS_PER_THREAD: u64 = 400;
/// Page-space bound: large enough to force multi-level structure
/// (hundreds of leaves), small enough that ranges collide constantly.
const SPACE: u64 = 200_000;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// The op stream for one thread, derived purely from the seed — so the
/// same seed always produces the same set of marked ranges.
fn ops_for(seed: u64, thread: u64) -> Vec<(u64, u64)> {
    let mut state = seed ^ (thread.wrapping_mul(0x9E3779B97F4A7C15));
    (0..OPS_PER_THREAD)
        .map(|_| {
            let start = lcg(&mut state) % SPACE;
            let len = 1 + lcg(&mut state) % 3000;
            (start, (start + len).min(SPACE))
        })
        .collect()
}

/// Runs the seeded mark-only workload on a fresh shared index and returns
/// the quiescent page-set observation.
fn stress_run(seed: u64) -> (u64, Vec<(u64, u64)>) {
    let index = Arc::new(BPlusRangeIndex::new());
    let global = Arc::new(GlobalClock::new());
    thread::scope(|s| {
        for t in 0..THREADS {
            let index = Arc::clone(&index);
            let global = Arc::clone(&global);
            s.spawn(move || {
                let costs = CostModel::default();
                let mut clock = ThreadClock::new(Arc::clone(&global));
                for (start, end) in ops_for(seed, t) {
                    index.mark_cached(&mut clock, &costs, LockScope::PerNode, start, end);
                }
            });
        }
    });
    index.check_invariants();
    let costs = CostModel::default();
    let mut clock = ThreadClock::new(global);
    let missing = index.missing_in(&mut clock, &costs, LockScope::PerNode, 0, SPACE);
    (index.resident(), missing)
}

#[test]
fn same_seed_stress_is_deterministic_and_matches_reference() {
    for seed in [0xC0FFEE_u64, 0xDECAFBAD] {
        let first = stress_run(seed);
        let second = stress_run(seed);
        assert_eq!(
            first, second,
            "seed {seed:#x}: same-seed runs diverged in final page set"
        );

        // Single-threaded replay through the flat tree as the reference
        // model: union of ranges is interleaving-independent, so the
        // concurrent B+ result must match it exactly.
        let reference = RangeTree::new();
        let costs = CostModel::default();
        let mut clock = ThreadClock::new(Arc::new(GlobalClock::new()));
        for t in 0..THREADS {
            for (start, end) in ops_for(seed, t) {
                reference.mark_cached(&mut clock, &costs, LockScope::PerNode, start, end);
            }
        }
        let ref_missing = reference.missing_in(&mut clock, &costs, LockScope::PerNode, 0, SPACE);
        assert_eq!(first.0, reference.resident(), "seed {seed:#x}: resident");
        assert_eq!(first.1, ref_missing, "seed {seed:#x}: missing ranges");
    }
}

#[test]
fn mixed_ops_with_clears_keep_invariants_and_accounting() {
    let index = Arc::new(BPlusRangeIndex::new());
    let global = Arc::new(GlobalClock::new());
    thread::scope(|s| {
        for t in 0..THREADS {
            let index = Arc::clone(&index);
            let global = Arc::clone(&global);
            s.spawn(move || {
                let costs = CostModel::default();
                let mut clock = ThreadClock::new(Arc::clone(&global));
                let mut state = 0xFEED ^ (t.wrapping_mul(0x2545F4914F6CDD1D));
                for i in 0..OPS_PER_THREAD {
                    let start = lcg(&mut state) % SPACE;
                    let end = (start + 1 + lcg(&mut state) % 3000).min(SPACE);
                    match (lcg(&mut state) % 16, i) {
                        // Rare full clears from two of the threads.
                        (0, _) if t < 2 => {
                            index.clear(&mut clock, &costs, LockScope::PerNode);
                        }
                        (1..=4, _) => {
                            index.missing_in(&mut clock, &costs, LockScope::PerNode, start, end);
                        }
                        _ => {
                            index.mark_cached(&mut clock, &costs, LockScope::PerNode, start, end);
                        }
                    }
                }
            });
        }
    });
    index.check_invariants();
    let costs = CostModel::default();
    let mut clock = ThreadClock::new(global);
    let missing = index.missing_in(&mut clock, &costs, LockScope::PerNode, 0, SPACE);
    let missing_pages: u64 = missing.iter().map(|&(s, e)| e - s).sum();
    assert_eq!(
        index.resident(),
        SPACE - missing_pages,
        "resident pages must be the exact complement of missing pages"
    );
    let stats = index.index_stats();
    assert!(stats.leaves > 0, "stress should leave a populated tree");
    assert!(stats.depth >= 2, "200k-page space should force inner nodes");
}
