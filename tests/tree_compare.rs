//! Flat-vs-B+ range-index comparison: the A/B gate behind the swap.
//!
//! Two halves, mirroring the two promises the B+ index makes:
//!
//! * **Single-threaded determinism** — the same seeded workload run per
//!   Table-2 mechanism under each index must export byte-identical
//!   telemetry once the additive `range_index` section (the only place
//!   the implementations may differ) is stripped. Charges are quantised
//!   per [`NODE_PAGES`]-aligned region in both indexes, so this holds to
//!   the byte, not approximately.
//! * **Contended-read scaling** — eight host threads hammering one shared
//!   cache view under `LockScope::PerNode` must accumulate less
//!   user-level tree lock wait with optimistic lock coupling (bounded
//!   retry penalty) than with the flat tree's blocking reader queue.
//!
//! The contended half drives the index layer directly with
//! barrier-synchronised rounds and a fresh virtual clock per round (the
//! open-loop arrival pattern: every thread reaches the round's region at
//! virtual time zero, so their charge windows genuinely overlap — a
//! long-running runtime thread's clock drifts microseconds away from its
//! peers and would dilute the collision this test exists to measure).
//! Wall-clock interleavings are still noisy, so it scales the workload up
//! until the flat baseline shows unambiguous blocking (≥50 µs of virtual
//! lock wait) before asserting. Telemetry sidecars (`BENCH_tree_*.json`)
//! go wherever `CP_BENCH_TELEMETRY_DIR` points, plus
//! `CARGO_TARGET_TMPDIR` so the test can verify the export itself.

use std::path::Path;
use std::sync::{Arc, Barrier};
use std::thread;

use cp_bench::{telemetry_sidecar, write_sidecar};
use crossprefetch::range_index::NODE_PAGES;
use crossprefetch::{
    FileRangeIndex, LockScope, Mode, RangeIndex, RangeIndexKind, Runtime, RuntimeConfig,
    RuntimeReport,
};
use simclock::{CostModel, GlobalClock, ThreadClock};
use simos::{Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig};

fn boot() -> Arc<Os> {
    Os::new(
        OsConfig::with_memory_mb(64),
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    )
}

/// The schema-compat workload: sequential ramp, warm re-reads, seeded
/// random jumps. Single-threaded, so the telemetry export is a pure
/// function of `(mode, kind)`.
fn run_mode(mode: Mode, kind: RangeIndexKind) -> Runtime {
    let mut config = RuntimeConfig::new(mode);
    config.range_index = kind;
    let runtime = Runtime::new(boot(), config);
    let mut clock = runtime.new_clock();
    let file = runtime
        .create_sized(&mut clock, "/data/compare.bin", 16 << 20)
        .expect("fresh namespace");
    let chunk = 16 * 1024u64;
    for i in 0..256u64 {
        file.read_charge(&mut clock, i * chunk, chunk);
    }
    for i in 0..64u64 {
        file.read_charge(&mut clock, i * chunk, chunk);
    }
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..64 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        file.read_charge(&mut clock, (state % (15 << 20)) & !4095, chunk);
    }
    runtime.flush_prefetch_batches(&mut clock);
    runtime
}

/// Removes a `"name":{...},`-shaped top-level section from a report JSON
/// string (brace-counted; report sections contain no string-embedded
/// braces).
fn strip_section(json: &str, name: &str) -> String {
    let key = format!("\"{name}\":{{");
    let Some(start) = json.find(&key) else {
        return json.to_string();
    };
    let bytes = json.as_bytes();
    let mut depth = 0usize;
    let mut i = start + key.len() - 1;
    let end = loop {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    break i;
                }
            }
            _ => {}
        }
        i += 1;
    };
    let mut tail = end + 1;
    if bytes.get(tail) == Some(&b',') {
        tail += 1;
    }
    format!("{}{}", &json[..start], &json[tail..])
}

#[test]
fn single_threaded_telemetry_is_index_agnostic() {
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR"));
    for mode in [
        Mode::AppOnly,
        Mode::OsOnly,
        Mode::Predict,
        Mode::PredictOpt,
        Mode::FetchAllOpt,
        Mode::FincoreApp,
    ] {
        let flat = run_mode(mode, RangeIndexKind::Flat);
        let bplus = run_mode(mode, RangeIndexKind::BPlus);
        let flat_json = RuntimeReport::collect(&flat).to_json();
        let bplus_json = RuntimeReport::collect(&bplus).to_json();
        // The only divergence the swap is allowed to introduce is the
        // additive structural section describing the index itself.
        assert!(flat_json.contains("\"range_index\":{\"kind\":\"flat\""));
        assert!(bplus_json.contains("\"range_index\":{\"kind\":\"bplus\""));
        assert_eq!(
            strip_section(&flat_json, "range_index"),
            strip_section(&bplus_json, "range_index"),
            "mode {}: flat and B+ telemetry diverge outside range_index",
            mode.label()
        );
        let id = format!("tree_parity_{}", mode.label());
        telemetry_sidecar(&format!("{id}_flat"), &flat);
        telemetry_sidecar(&format!("{id}_bplus"), &bplus);
        write_sidecar(tmp, &format!("{id}_flat"), &flat);
        write_sidecar(tmp, &format!("{id}_bplus"), &bplus);
    }
}

/// Eight threads colliding on one shared cache view, barrier-synchronised
/// per round. Each round every thread starts a fresh clock at virtual
/// zero, marks the round's (previously untouched) region, then queries it
/// — so writer holds overlap reader arrivals on the same leaf/node and
/// the two contention disciplines actually face the same collisions.
/// Returns `(total lock wait, optimistic retries)`.
fn stress_index(kind: RangeIndexKind, rounds: usize) -> (u64, u64) {
    let index = Arc::new(FileRangeIndex::new(kind));
    let global = Arc::new(GlobalClock::new());
    let barrier = Arc::new(Barrier::new(8));
    thread::scope(|s| {
        for _ in 0..8 {
            let index = Arc::clone(&index);
            let global = Arc::clone(&global);
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let costs = CostModel::default();
                for r in 0..rounds {
                    barrier.wait();
                    let mut clock = ThreadClock::new(Arc::clone(&global));
                    let base = r as u64 * NODE_PAGES;
                    index.mark_cached(
                        &mut clock,
                        &costs,
                        LockScope::PerNode,
                        base,
                        base + NODE_PAGES,
                    );
                    index.missing_in(
                        &mut clock,
                        &costs,
                        LockScope::PerNode,
                        base,
                        base + NODE_PAGES,
                    );
                }
            });
        }
    });
    (index.lock_wait_ns(), index.index_stats().optimistic_retries)
}

/// An 8-thread shared-file workload through the full runtime read path,
/// exported as the stress sidecar for the given index kind.
fn runtime_stress(kind: RangeIndexKind, tag: &str) -> Runtime {
    let os = Os::new(
        OsConfig::with_memory_mb(256),
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    );
    let mut config = RuntimeConfig::new(Mode::Predict);
    config.range_index = kind;
    let rt = Runtime::new(os, config);
    let path = format!("/{tag}/shared.bin");
    let mut clock = rt.new_clock();
    rt.create_sized(&mut clock, &path, 32 << 20).unwrap();
    thread::scope(|s| {
        for _ in 0..8 {
            let rt = rt.clone();
            let path = path.clone();
            s.spawn(move || {
                let mut clock = rt.new_clock();
                let file = rt.open(&mut clock, &path).unwrap();
                for i in 0..512u64 {
                    let off = (i * 16 * 1024) % (31 << 20);
                    file.read_charge(&mut clock, off & !4095, 16 * 1024);
                }
            });
        }
    });
    rt
}

#[test]
fn contended_reads_favor_optimistic_coupling() {
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR"));
    // Scale until the flat baseline shows real blocking so the comparison
    // is not a coin flip on scheduler noise.
    let mut rounds = 16;
    let mut last = (0u64, 0u64, 0u64);
    for _attempt in 0..6 {
        let (flat_wait, _) = stress_index(RangeIndexKind::Flat, rounds);
        let (bplus_wait, retries) = stress_index(RangeIndexKind::BPlus, rounds);
        last = (flat_wait, bplus_wait, retries);
        if flat_wait >= 50_000 && bplus_wait < flat_wait && retries > 0 {
            // Export the runtime-level stress sidecars for this A/B so CI
            // archives the full telemetry (including the new structural
            // section) alongside the gate.
            let flat_rt = runtime_stress(RangeIndexKind::Flat, "flat");
            let bplus_rt = runtime_stress(RangeIndexKind::BPlus, "bplus");
            let report = RuntimeReport::collect(&bplus_rt);
            assert_eq!(report.range_index_kind, "bplus");
            assert!(report.range_index_leaves > 0);
            telemetry_sidecar("tree_flat", &flat_rt);
            telemetry_sidecar("tree_bplus", &bplus_rt);
            write_sidecar(tmp, "tree_flat", &flat_rt);
            write_sidecar(tmp, "tree_bplus", &bplus_rt);
            let json = std::fs::read_to_string(tmp.join("BENCH_tree_bplus.json")).unwrap();
            assert!(json.contains("\"range_index\":{\"kind\":\"bplus\""));
            assert!(json.contains("\"optimistic_retries\""));
            return;
        }
        rounds *= 2;
    }
    panic!(
        "optimistic coupling never separated from the flat baseline: \
         flat wait {} ns, B+ wait {} ns, {} retries",
        last.0, last.1, last.2
    );
}
