//! Sharded-registry integration tests (both layers).
//!
//! The per-file registries at CROSS-LIB (`Runtime`'s inode → state map)
//! and CROSS-OS (inode → cache, fd → entry) are N-way sharded. Two
//! properties matter:
//!
//! * **safety under host concurrency** — many threads opening, reading,
//!   and closing across distinct shards never lose or duplicate state,
//!   and closed descriptor slots are reclaimed;
//! * **timing neutrality** — the shard count is deployment configuration
//!   for *host-lock* spreading and must never leak into the simulated
//!   timeline: same-seed telemetry is bit-identical for 1, 4, and 16
//!   shards.

use std::sync::Arc;
use std::thread;

use crossprefetch::telemetry::RuntimeReport;
use crossprefetch::{Mode, Runtime, RuntimeConfig};
use simos::{Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig};

fn boot(os_shards: usize) -> Arc<Os> {
    let mut config = OsConfig::with_memory_mb(256);
    config.registry_shards = os_shards;
    Os::new(
        config,
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    )
}

fn runtime(os: Arc<Os>, lib_shards: usize) -> Runtime {
    let mut config = RuntimeConfig::new(Mode::Predict);
    config.registry_shards = lib_shards;
    Runtime::new(os, config)
}

#[test]
fn concurrent_open_read_close_stress() {
    const THREADS: usize = 8;
    const FILES: usize = 24;
    let os = boot(8);
    let rt = runtime(Arc::clone(&os), 8);

    thread::scope(|s| {
        for t in 0..THREADS {
            let rt = rt.clone();
            let os = Arc::clone(&os);
            s.spawn(move || {
                let mut clock = rt.new_clock();
                for i in 0..FILES {
                    let path = format!("/t{t}/f{i}");
                    let file = rt.create_sized(&mut clock, &path, 256 * 1024).unwrap();
                    let outcome = file.read_charge(&mut clock, 0, 64 * 1024);
                    assert_eq!(outcome.pages, 16, "short read on {path}");
                    // Descriptor churn through the OS fd table: a second
                    // descriptor per file, closed immediately.
                    let extra = os.open(&mut clock, &path).unwrap();
                    os.close(&mut clock, extra);
                }
            });
        }
    });

    assert_eq!(rt.file_registry_stats().shards(), 8);
    assert_eq!(os.cache_registry_stats().shards(), 8);
    assert_eq!(os.fd_registry_stats().shards(), 8);

    // No state lost across shards: every file reopens and reads back.
    let mut clock = rt.new_clock();
    for t in 0..THREADS {
        for i in 0..FILES {
            let path = format!("/t{t}/f{i}");
            let file = rt.open(&mut clock, &path).unwrap();
            assert_eq!(file.size(), 256 * 1024, "lost size for {path}");
        }
    }

    // Closed descriptors were reclaimed via the free list: the live count
    // reflects only still-open descriptors, and the slot high-water mark
    // stayed well below one-slot-per-open (each thread's churn reused the
    // slot it just freed; at most one extra descriptor was live per
    // thread at any moment, plus the verification reopens above).
    let (high_water, live) = os.fd_slot_stats();
    let runtime_fds = 2 * THREADS * FILES; // stress opens + verification reopens
    assert_eq!(live, runtime_fds, "closed fds not reclaimed");
    assert!(
        high_water <= runtime_fds + THREADS,
        "free-list reuse failed: high-water {high_water} for {runtime_fds} live fds"
    );
}

/// One deterministic single-threaded workload; returns the telemetry JSON.
fn run_seeded_workload(shards: usize) -> String {
    let os = boot(shards);
    let rt = runtime(os, shards);
    let mut clock = rt.new_clock();

    let a = rt.create_sized(&mut clock, "/a", 8 << 20).unwrap();
    let b = rt.create_sized(&mut clock, "/b", 4 << 20).unwrap();
    // Forward scan, backward scan, strided probe, write burst, re-read.
    for i in 0..192u64 {
        a.read_charge(&mut clock, i * 32 * 1024, 32 * 1024);
    }
    for i in (0..96u64).rev() {
        b.read_charge(&mut clock, i * 16 * 1024, 16 * 1024);
    }
    for i in 0..32u64 {
        a.read_charge(&mut clock, (i * 37 % 256) * 16 * 1024, 8 * 1024);
    }
    for i in 0..24u64 {
        b.write_charge(&mut clock, i * 64 * 1024, 8 * 1024);
    }
    rt.drop_cache_view(&mut clock);
    for i in 0..64u64 {
        a.read_charge(&mut clock, i * 64 * 1024, 32 * 1024);
    }
    RuntimeReport::collect(&rt).to_json()
}

#[test]
fn telemetry_is_bit_identical_across_shard_counts() {
    let one = run_seeded_workload(1);
    let four = run_seeded_workload(4);
    let sixteen = run_seeded_workload(16);

    // The trailing "registries" section declares the configured shard
    // layout (shard count, per-shard vectors) — it *describes the
    // configuration being varied*, so it is excluded; everything before
    // it is behavior and must not move by a byte.
    let behavior = |json: &str| {
        let (prefix, _) = json
            .split_once(",\"registries\":")
            .expect("registries section missing");
        prefix.to_string()
    };
    assert_eq!(behavior(&one), behavior(&four));
    assert_eq!(behavior(&one), behavior(&sixteen));

    // And the registry accounting itself is all-zero in a single-threaded
    // run: wall-clock wait is recorded only on contended acquisitions.
    for json in [&one, &four, &sixteen] {
        let (_, registries) = json.split_once(",\"registries\":").unwrap();
        assert_eq!(registries.matches("\"lock_wait_ns\":0").count(), 3);
        assert_eq!(registries.matches("\"contended\":0").count(), 3);
    }
}
