//! Completion-driven ring: off-path byte-identity, same-seed
//! determinism, visibility gating, demand-crossing reduction at hit
//! parity, speculative pre-issue absorb/cancel, and closed-loop
//! prefetch-quality accounting with the ring enabled.

use crossprefetch::{Mode, Runtime, RuntimeConfig, RuntimeReport};
use simos::{Device, DeviceConfig, FaultPlan, FileSystem, FsKind, Os, OsConfig};
use workloads::{run_kvprobe, setup_kvprobe, KvProbeConfig};

fn os(memory_mb: u64) -> std::sync::Arc<Os> {
    Os::new(
        OsConfig::with_memory_mb(memory_mb),
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    )
}

const MECHANISMS: [Mode; 6] = [
    Mode::AppOnly,
    Mode::OsOnly,
    Mode::Predict,
    Mode::PredictOpt,
    Mode::FetchAllOpt,
    Mode::FincoreApp,
];

/// The same deterministic mixed workload the batching tests drive:
/// sequential ramp, warm re-read, seeded random jumps.
fn run_workload(config: RuntimeConfig) -> String {
    let runtime = Runtime::new(os(48), config);
    let mut clock = runtime.new_clock();
    let file = runtime
        .create_sized(&mut clock, "/data/w.bin", 48 << 20)
        .unwrap();
    let chunk = 16 * 1024u64;
    for i in 0..512u64 {
        file.read_charge(&mut clock, i * chunk, chunk);
    }
    for i in 0..64u64 {
        file.read_charge(&mut clock, i * chunk, chunk);
    }
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..128 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        file.read_charge(&mut clock, (state % (47 << 20)) & !4095, chunk);
    }
    runtime.flush_prefetch_batches(&mut clock);
    RuntimeReport::collect(&runtime).to_json()
}

/// With `ring_submit` off, the ring knobs must be inert: telemetry is
/// byte-identical no matter how they are set, for every mechanism.
#[test]
fn ring_knobs_are_inert_when_disabled() {
    for mode in MECHANISMS {
        let baseline = run_workload(RuntimeConfig::new(mode));
        let mut tweaked = RuntimeConfig::new(mode);
        tweaked.ring_spec_confidence = 0.0;
        assert_eq!(
            baseline,
            run_workload(tweaked),
            "{}: ring knobs leaked into the ring-off path",
            mode.label()
        );
    }
}

/// The ring requires cache visibility (the absorb path reads the shared
/// bitmap): turning the knob on under a blind mechanism changes nothing,
/// end to end.
#[test]
fn ring_is_gated_on_visibility_end_to_end() {
    for mode in [Mode::AppOnly, Mode::OsOnly, Mode::FincoreApp] {
        let baseline = run_workload(RuntimeConfig::new(mode));
        let mut ringed = RuntimeConfig::new(mode);
        ringed.ring_submit = true;
        assert_eq!(
            baseline,
            run_workload(ringed),
            "{}: ring_submit must be inert without visibility",
            mode.label()
        );
    }
}

/// Ring-enabled runs are deterministic: the same configuration twice
/// produces byte-identical telemetry, for every mechanism, with and
/// without batching stacked on top.
#[test]
fn ring_run_is_deterministic_for_every_mechanism() {
    for mode in MECHANISMS {
        for batch in [false, true] {
            let mut config = RuntimeConfig::new(mode);
            config.ring_submit = true;
            config.batch_submit = batch;
            let first = run_workload(config.clone());
            let second = run_workload(config);
            assert_eq!(
                first,
                second,
                "{} (batch={batch}): same-seed ring divergence",
                mode.label()
            );
        }
    }
}

/// The tentpole gate: with the ring enabled, demand reads stop crossing
/// one syscall each — fully-claimed reads absorb through the shared
/// bitmap and misses share vectored `read_batch` crossings — while the
/// cache-hit accounting stays identical.
#[test]
fn ring_cuts_demand_crossings_at_hit_parity() {
    let run = |ring: bool| {
        let mut config = RuntimeConfig::new(Mode::Predict);
        config.ring_submit = ring;
        let runtime = Runtime::new(os(64), config);
        let mut clock = runtime.new_clock();
        let file = runtime
            .create_sized(&mut clock, "/data/seq.bin", 48 << 20)
            .unwrap();
        for i in 0..768u64 {
            file.read_charge(&mut clock, i * 16_384, 16_384);
        }
        runtime.flush_prefetch_batches(&mut clock);
        let os = runtime.os();
        let crossings = os.stats().reads.get() + os.stats().read_batch_calls.get();
        let report = RuntimeReport::collect(&runtime);
        (
            crossings,
            report.hit_ratio,
            report.reads,
            report.pages_initiated,
            report.prefetch_quality.timely + report.prefetch_quality.late,
        )
    };
    let (off_crossings, off_hits, off_reads, off_init, off_consumed) = run(false);
    let (on_crossings, on_hits, on_reads, on_init, on_consumed) = run(true);
    assert_eq!(off_reads, on_reads, "ring must not lose reads");
    assert!(
        on_crossings * 2 <= off_crossings,
        "expected >=2x fewer demand-read crossings: {on_crossings} vs {off_crossings}"
    );
    // Identical hit accounting: same hit ratio, same initiated pages,
    // same consumed (timely+late) prefetched pages.
    assert_eq!(off_hits, on_hits, "hit ratio must not change");
    assert_eq!(off_init, on_init, "initiated pages must not change");
    assert_eq!(off_consumed, on_consumed, "consumed pages must not change");
}

/// When the prefetch class is broken (permanent EIO), the predicted next
/// read stays missing, so the confident predictor pre-issues it through
/// the ring (demand class, un-faulted) and the stream's next read absorbs
/// the parked completion without a crossing of its own.
#[test]
fn speculative_preissue_absorbs_matching_reads() {
    let plan = FaultPlan::seeded(7).with_prefetch_eio(1.0);
    let os = Os::new(
        OsConfig::with_memory_mb(64),
        Device::with_fault_plan(DeviceConfig::local_nvme(), plan),
        FileSystem::new(FsKind::Ext4Like),
    );
    let mut config = RuntimeConfig::new(Mode::Predict);
    config.ring_submit = true;
    let runtime = Runtime::new(os, config);
    let mut clock = runtime.new_clock();
    let file = runtime
        .create_sized(&mut clock, "/data/seq.bin", 32 << 20)
        .unwrap();
    for i in 0..256u64 {
        file.read_charge(&mut clock, i * 16_384, 16_384);
    }
    runtime.flush_prefetch_batches(&mut clock);
    let stats = runtime.stats();
    assert_eq!(stats.reads.get(), 256, "every read completes");
    assert!(
        stats.ring_spec_issued.get() > 0,
        "confident predictions over missing ranges must pre-issue"
    );
    assert!(
        stats.ring_spec_absorbed.get() > 0,
        "the sequential stream must absorb parked speculations"
    );
    // Absorbed speculations never cross: total crossings stay well below
    // one per read.
    let os = runtime.os();
    let crossings = os.stats().reads.get() + os.stats().read_batch_calls.get();
    assert!(
        crossings < 256 + stats.ring_spec_issued.get(),
        "absorbed reads must not pay their own crossing ({crossings})"
    );
}

/// A mispredicted speculation is cancelled and its pages re-enter the
/// prefetch-quality ledger: after a cache drop they surface as `wasted`,
/// and the closed-loop invariant (timely + late + wasted ==
/// pages_initiated) holds with the ring enabled.
#[test]
fn cancelled_speculation_is_charged_as_wasted() {
    let plan = FaultPlan::seeded(7).with_prefetch_eio(1.0);
    let os = Os::new(
        OsConfig::with_memory_mb(64),
        Device::with_fault_plan(DeviceConfig::local_nvme(), plan),
        FileSystem::new(FsKind::Ext4Like),
    );
    let mut config = RuntimeConfig::new(Mode::Predict);
    config.ring_submit = true;
    let runtime = Runtime::new(os, config);
    let mut clock = runtime.new_clock();
    let file = runtime
        .create_sized(&mut clock, "/data/seq.bin", 32 << 20)
        .unwrap();
    // Ramp long enough to park a speculation, then jump away from it.
    for i in 0..256u64 {
        file.read_charge(&mut clock, i * 16_384, 16_384);
    }
    file.read_charge(&mut clock, 31 << 20, 16_384);
    runtime.flush_prefetch_batches(&mut clock);
    let stats = runtime.stats();
    assert!(
        stats.ring_spec_cancelled.get() > 0,
        "the jump must cancel the parked speculation"
    );
    assert!(
        stats.ring_spec_pages_charged.get() > 0,
        "cancelled pages must be charged to the quality ledger"
    );
    runtime.os().drop_caches(&mut clock);
    let report = RuntimeReport::collect(&runtime);
    let q = report.prefetch_quality;
    assert!(
        q.wasted >= stats.ring_spec_pages_charged.get(),
        "cancelled speculative pages must surface as wasted"
    );
    assert_eq!(
        q.timely + q.late + q.wasted,
        report.pages_initiated,
        "quality books don't balance with the ring on \
         (timely={} late={} wasted={} initiated={})",
        q.timely,
        q.late,
        q.wasted,
        report.pages_initiated
    );
}

/// The engines-suite closed-loop invariant, re-run with the ring (and
/// batching) enabled on the zipfian kvprobe: every initiated page is
/// classified exactly once even when speculations issue, absorb, and
/// cancel along the way.
#[test]
fn quality_counters_balance_under_ring_on_kvprobe() {
    for batch in [false, true] {
        let o = os(8);
        let mut config = RuntimeConfig::new(Mode::Predict);
        config.ring_submit = true;
        config.batch_submit = batch;
        let runtime = Runtime::new(o, config);
        let cfg = KvProbeConfig {
            probes: 2048,
            ..KvProbeConfig::default()
        };
        setup_kvprobe(&runtime, &cfg, "/kv");
        let mut clock = runtime.new_clock();
        run_kvprobe(&runtime, &mut clock, &cfg, "/kv");
        runtime.flush_prefetch_batches(&mut clock);
        runtime.os().drop_caches(&mut clock);
        let report = RuntimeReport::collect(&runtime);
        let q = report.prefetch_quality;
        assert!(report.pages_initiated > 0);
        assert_eq!(
            q.timely + q.late + q.wasted,
            report.pages_initiated,
            "batch={batch}: quality books don't balance with the ring on \
             (timely={} late={} wasted={} initiated={})",
            q.timely,
            q.late,
            q.wasted,
            report.pages_initiated
        );
    }
}
