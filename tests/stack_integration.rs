//! Cross-crate integration tests: the full stack from device model to
//! CROSS-LIB runtime, exercised together.

use crossprefetch::{Mode, Runtime};
use simos::{Advice, Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig, RaInfoRequest};
use std::sync::Arc;

fn boot(memory_mb: u64, fs: FsKind) -> Arc<Os> {
    Os::new(
        OsConfig::with_memory_mb(memory_mb),
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(fs),
    )
}

#[test]
fn end_to_end_content_integrity_under_prefetching() {
    // Data written through the runtime must read back identically through
    // every mechanism, across cache drops and evictions.
    for mode in [Mode::AppOnly, Mode::OsOnly, Mode::Predict, Mode::PredictOpt] {
        let os = boot(16, FsKind::Ext4Like);
        let rt = Runtime::with_mode(Arc::clone(&os), mode);
        let mut clock = rt.new_clock();
        let file = rt.create(&mut clock, "/it/data").unwrap();
        let payload: Vec<u8> = (0..1_000_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        file.write(&mut clock, 0, &payload);

        // Cache pressure: stream another file bigger than memory.
        let noise = rt.create_sized(&mut clock, "/it/noise", 32 << 20).unwrap();
        for i in 0..512u64 {
            noise.read_charge(&mut clock, i * 64 * 1024, 64 * 1024);
        }

        let back = file.read(&mut clock, 0, payload.len() as u64);
        assert_eq!(back, payload, "{mode:?}");
    }
}

#[test]
fn virtual_time_is_monotone_through_the_stack() {
    let os = boot(64, FsKind::Ext4Like);
    let rt = Runtime::with_mode(Arc::clone(&os), Mode::PredictOpt);
    let mut clock = rt.new_clock();
    let file = rt.create_sized(&mut clock, "/it/mono", 8 << 20).unwrap();
    let mut last = clock.now();
    for i in 0..256u64 {
        file.read_charge(&mut clock, i * 16 * 1024, 16 * 1024);
        assert!(clock.now() >= last);
        last = clock.now();
    }
    assert!(os.global().now() >= last);
}

#[test]
fn readahead_info_bitmap_matches_true_cache_state() {
    let os = boot(128, FsKind::Ext4Like);
    let mut clock = os.new_clock();
    let fd = os.create_sized(&mut clock, "/it/bitmap", 8 << 20).unwrap();
    // Create a deliberately patchy cache: stripes of reads.
    for stripe in 0..16u64 {
        if stripe % 3 == 0 {
            os.read_charge(&mut clock, fd, stripe * 512 * 1024, 256 * 1024);
        }
    }
    let info = os.readahead_info(&mut clock, fd, RaInfoRequest::query(0, 8 << 20));
    let cache = os.cache(os.fd_inode(fd));
    let state = cache.state.read();
    for page in 0..(8 << 20) / 4096 {
        assert_eq!(
            simos::bitmap_has_page(&info, page),
            state.is_present(page),
            "page {page}"
        );
    }
}

#[test]
fn f2fs_and_ext4_deliver_identical_content() {
    for fs in [FsKind::Ext4Like, FsKind::F2fsLike] {
        let os = boot(64, fs);
        let rt = Runtime::with_mode(Arc::clone(&os), Mode::PredictOpt);
        let mut clock = rt.new_clock();
        // Interleave writes to two files to exercise allocator differences.
        let a = rt.create(&mut clock, "/x/a").unwrap();
        let b = rt.create(&mut clock, "/x/b").unwrap();
        for i in 0..64u64 {
            a.write(&mut clock, i * 4096, &[i as u8; 4096]);
            b.write(&mut clock, i * 4096, &[(i + 128) as u8; 4096]);
        }
        for i in (0..64u64).rev() {
            assert_eq!(a.read(&mut clock, i * 4096, 4096), vec![i as u8; 4096]);
            assert_eq!(
                b.read(&mut clock, i * 4096, 4096),
                vec![(i + 128) as u8; 4096]
            );
        }
    }
}

#[test]
fn remote_storage_is_slower_but_mechanism_ordering_holds() {
    let run = |device: DeviceConfig, mode: Mode| {
        let os = Os::new(
            OsConfig::with_memory_mb(64),
            Device::new(device),
            FileSystem::new(FsKind::Ext4Like),
        );
        let rt = Runtime::with_mode(Arc::clone(&os), mode);
        let mut clock = rt.new_clock();
        let file = rt.create_sized(&mut clock, "/r/f", 32 << 20).unwrap();
        if mode == Mode::AppOnly {
            file.advise(&mut clock, Advice::Random, 0, 0);
        }
        let t0 = clock.now();
        for i in 0..1024u64 {
            file.read_charge(&mut clock, i * 16 * 1024, 16 * 1024);
        }
        (clock.now() - t0) as f64
    };
    // Remote is slower than local for the same mechanism.
    let local = run(DeviceConfig::local_nvme(), Mode::PredictOpt);
    let remote = run(DeviceConfig::remote_nvmeof(), Mode::PredictOpt);
    assert!(remote > local);
    // CrossPrefetch still beats the no-prefetch posture on remote storage.
    let remote_app = run(DeviceConfig::remote_nvmeof(), Mode::AppOnly);
    assert!(remote_app > remote);
}

#[test]
fn lsm_store_runs_on_the_full_stack() {
    use minilsm::{bench_key, bench_value, Db, DbBench, DbOptions};
    let os = boot(128, FsKind::Ext4Like);
    let rt = Runtime::with_mode(Arc::clone(&os), Mode::PredictOpt);
    let mut clock = rt.new_clock();
    let db = Db::create(rt.clone(), &mut clock, DbOptions::default());
    let bench = DbBench::new(Arc::clone(&db), 30_000, 256);
    bench.fill_seq();

    os.drop_caches(&mut clock);
    rt.drop_cache_view(&mut clock);

    // Values survive the cache drop (they live on the device).
    let mut probe = rt.new_clock();
    for i in (0..30_000u64).step_by(1111) {
        assert_eq!(db.get(&mut probe, &bench_key(i)), Some(bench_value(i, 256)));
    }
    // And the read phase performs sane I/O accounting.
    let result = bench.read_random(4, 200, 3);
    assert!(result.hit_ratio >= 0.0 && result.hit_ratio <= 1.0);
    assert!(result.kops() > 0.0);
}

#[test]
fn snappy_workload_compresses_file_contents_faithfully() {
    use workloads::{compress, decompress};
    let os = boot(64, FsKind::Ext4Like);
    let rt = Runtime::with_mode(Arc::clone(&os), Mode::PredictOpt);
    let mut clock = rt.new_clock();
    let file = rt.create(&mut clock, "/sz/in").unwrap();
    let text: Vec<u8> = std::iter::repeat_n(
        b"all work and no play makes io a dull boy ".as_slice(),
        4000,
    )
    .flatten()
    .copied()
    .collect();
    file.write(&mut clock, 0, &text);

    let data = file.read(&mut clock, 0, text.len() as u64);
    let packed = compress(&data);
    assert!(
        packed.len() < text.len() / 4,
        "repetitive text compresses well"
    );
    assert_eq!(decompress(&packed).unwrap(), text);
}

#[test]
fn prefetch_quality_and_trace_cover_sequential_then_random() {
    use crossprefetch::RuntimeReport;
    use std::collections::HashSet;

    let os = boot(64, FsKind::Ext4Like);
    let rt = Runtime::with_mode(Arc::clone(&os), Mode::PredictOpt);
    assert!(!rt.trace().is_enabled(), "tracing must default to off");
    rt.trace().set_enabled(true);
    let mut clock = rt.new_clock();
    let file = rt.create_sized(&mut clock, "/q/data", 32 << 20).unwrap();

    // Phase 1: sequential scan of the first 8 MiB. The predictor ramps,
    // prefetch runs ahead, and consumed speculative pages classify as
    // timely (or late when the read overtakes the fill).
    for i in 0..512u64 {
        file.read_charge(&mut clock, i * 16 * 1024, 16 * 1024);
    }
    let mid = os.prefetch_quality();
    assert!(
        mid.timely + mid.late > 0,
        "sequential phase must consume prefetched pages"
    );

    // Phase 2: far random jumps. The predictor collapses to random (no
    // new prefetch), leaving the pages speculated ahead of the abandoned
    // sequential stream untouched.
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..256 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let offset = (state % (31 << 20)) & !4095;
        file.read_charge(&mut clock, offset, 16 * 1024);
    }

    // Evicting those never-read speculative pages marks them wasted.
    os.drop_caches(&mut clock);
    let quality = os.prefetch_quality();
    assert!(quality.timely > 0, "expected timely pages, got {quality:?}");
    assert!(quality.wasted > 0, "expected wasted pages, got {quality:?}");

    // The latency histograms separate outcome classes: the stream produces
    // prefetch hits, the random phase produces demand misses.
    let report = RuntimeReport::collect(&rt);
    assert!(report.read_prefetch_hit.count > 0);
    assert!(report.read_demand_miss.count > 0);
    assert_eq!(report.prefetch_quality.timely, quality.timely);

    // And the decision trace spans both layers with distinct event kinds.
    let events = rt.trace().snapshot();
    let kinds: HashSet<&str> = events.iter().map(|e| e.kind.name()).collect();
    assert!(
        kinds.len() >= 5,
        "expected >=5 distinct event kinds, got {kinds:?}"
    );
    assert!(kinds.contains("read-exit"));
    assert!(kinds.contains("ra-info-call"), "OS events must bridge over");
}

#[test]
fn mode_comparison_shapes_hold_end_to_end() {
    // The headline ordering on a batched-random shared file, asserted
    // across the whole stack in one place. Four threads keep the run in
    // the latency-sensitive regime where prefetching differentiates; at
    // full device saturation all mechanisms converge on bandwidth.
    let run = |mode: Mode| {
        let os = boot(48, FsKind::Ext4Like);
        let rt = Runtime::with_mode(Arc::clone(&os), mode);
        let cfg = workloads::MicroConfig {
            threads: 4,
            data_bytes: 128 << 20,
            io_bytes: 16 * 1024,
            ops_per_thread: 1200,
            shared: true,
            pattern: workloads::MicroPattern::BatchedRandom { batch: 8 },
            seed: 0xE2E,
        };
        workloads::setup_micro(&rt, &cfg);
        let result = workloads::run_micro(&rt, &cfg);
        (result.mbps(), result.miss_pct)
    };
    let (app, app_miss) = run(Mode::AppOnly);
    let (crossp, crossp_miss) = run(Mode::PredictOpt);
    assert!(
        crossp > app * 1.25,
        "CrossPrefetch {crossp:.0} MB/s must clearly beat APPonly {app:.0} MB/s"
    );
    assert!(
        crossp_miss < app_miss / 2.0,
        "CrossPrefetch miss {crossp_miss:.0}% must be well below APPonly {app_miss:.0}%"
    );
}
