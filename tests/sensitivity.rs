//! Sensitivity analysis: the paper-shape conclusions must be robust to
//! the calibration constants in [`simclock::CostModel`]. Each test
//! perturbs the software-cost constants substantially and re-checks a
//! headline ordering — if a conclusion held only for one magic set of
//! numbers, it would not be a reproduction.

use crossprefetch::{Mode, Runtime};
use simclock::CostModel;
use simos::{Device, DeviceConfig, FileSystem, FsKind, Os, OsConfig};
use std::sync::Arc;
use workloads::{run_micro, setup_micro, MicroConfig, MicroPattern};

fn scaled_costs(factor: f64) -> CostModel {
    let base = CostModel::default();
    let scale = |ns: u64| ((ns as f64) * factor).max(1.0) as u64;
    CostModel {
        syscall_ns: scale(base.syscall_ns),
        page_copy_ns: scale(base.page_copy_ns),
        tree_walk_per_page_ns: scale(base.tree_walk_per_page_ns),
        tree_insert_per_page_ns: scale(base.tree_insert_per_page_ns),
        tree_lock_hold_per_page_ns: scale(base.tree_lock_hold_per_page_ns),
        bitmap_word_ns: scale(base.bitmap_word_ns),
        bitmap_lock_hold_ns: scale(base.bitmap_lock_hold_ns),
        lock_op_ns: scale(base.lock_op_ns),
        fincore_scan_per_page_ns: scale(base.fincore_scan_per_page_ns),
        fincore_mmap_lock_ns: scale(base.fincore_mmap_lock_ns),
        bitmap_copy_word_ns: scale(base.bitmap_copy_word_ns),
        lru_per_page_ns: scale(base.lru_per_page_ns),
        page_alloc_ns: scale(base.page_alloc_ns),
        predictor_step_ns: scale(base.predictor_step_ns),
        range_tree_op_ns: scale(base.range_tree_op_ns),
        range_index_descent_ns: scale(base.range_index_descent_ns),
        range_index_split_ns: scale(base.range_index_split_ns),
        range_index_merge_ns: scale(base.range_index_merge_ns),
        range_index_retry_ns: scale(base.range_index_retry_ns),
        fault_ns: scale(base.fault_ns),
        mmap_minor_ns: scale(base.mmap_minor_ns),
    }
}

fn micro_mbps(mode: Mode, costs: CostModel) -> (f64, f64) {
    let mut config = OsConfig::with_memory_mb(48);
    config.costs = costs;
    let os = Os::new(
        config,
        Device::new(DeviceConfig::local_nvme()),
        FileSystem::new(FsKind::Ext4Like),
    );
    let rt = Runtime::with_mode(Arc::clone(&os), mode);
    let cfg = MicroConfig {
        threads: 4,
        data_bytes: 96 << 20,
        io_bytes: 16 * 1024,
        ops_per_thread: 1000,
        shared: true,
        pattern: MicroPattern::BatchedRandom { batch: 8 },
        seed: 0x5E75,
    };
    setup_micro(&rt, &cfg);
    let result = run_micro(&rt, &cfg);
    (result.mbps(), result.miss_pct)
}

#[test]
fn headline_ordering_survives_halved_software_costs() {
    let costs = scaled_costs(0.5);
    let (app, app_miss) = micro_mbps(Mode::AppOnly, costs.clone());
    let (crossp, crossp_miss) = micro_mbps(Mode::PredictOpt, costs);
    assert!(
        crossp > app * 1.2,
        "0.5x costs: CrossP {crossp:.0} vs APPonly {app:.0} MB/s"
    );
    assert!(crossp_miss < app_miss / 2.0);
}

#[test]
fn headline_ordering_survives_doubled_software_costs() {
    let costs = scaled_costs(2.0);
    let (app, app_miss) = micro_mbps(Mode::AppOnly, costs.clone());
    let (crossp, crossp_miss) = micro_mbps(Mode::PredictOpt, costs);
    assert!(
        crossp > app * 1.2,
        "2x costs: CrossP {crossp:.0} vs APPonly {app:.0} MB/s"
    );
    assert!(crossp_miss < app_miss / 2.0);
}

#[test]
fn headline_ordering_survives_quadrupled_software_costs() {
    // Even with software 4x more expensive (approaching CPU-bound),
    // prefetching's miss-rate advantage must dominate.
    let costs = scaled_costs(4.0);
    let (app, _) = micro_mbps(Mode::AppOnly, costs.clone());
    let (crossp, _) = micro_mbps(Mode::PredictOpt, costs);
    assert!(
        crossp > app,
        "4x costs: CrossP {crossp:.0} vs APPonly {app:.0} MB/s"
    );
}

#[test]
fn fincore_stays_costlier_than_bitmap_under_perturbation() {
    // The core CROSS-OS claim must hold across the calibration range:
    // a fincore-style scan dwarfs the exported-bitmap query.
    for factor in [0.5, 1.0, 3.0] {
        let mut config = OsConfig::with_memory_mb(256);
        config.costs = scaled_costs(factor);
        let os = Os::new(
            config,
            Device::new(DeviceConfig::local_nvme()),
            FileSystem::new(FsKind::Ext4Like),
        );
        let mut clock = os.new_clock();
        let fd = os.create_sized(&mut clock, "/big", 128 << 20).unwrap();
        let t0 = clock.now();
        os.fincore(&mut clock, fd);
        let fincore_cost = clock.now() - t0;
        let t1 = clock.now();
        os.readahead_info(&mut clock, fd, simos::RaInfoRequest::query(0, 128 << 20));
        let query_cost = clock.now() - t1;
        assert!(
            fincore_cost > 5 * query_cost,
            "factor {factor}: fincore {fincore_cost}ns vs query {query_cost}ns"
        );
    }
}

#[test]
fn reverse_scan_advantage_survives_perturbation() {
    use minilsm::{Db, DbBench, DbOptions};
    for factor in [0.5, 2.0] {
        let run = |mode: Mode| {
            let mut config = OsConfig::with_memory_mb(128);
            config.costs = scaled_costs(factor);
            let os = Os::new(
                config,
                Device::new(DeviceConfig::local_nvme()),
                FileSystem::new(FsKind::Ext4Like),
            );
            let rt = Runtime::with_mode(Arc::clone(&os), mode);
            let mut clock = rt.new_clock();
            let db = Db::create(rt.clone(), &mut clock, DbOptions::default());
            let bench = DbBench::new(db, 40_000, 400);
            bench.fill_seq();
            let mut c = os.new_clock();
            os.drop_caches(&mut c);
            rt.drop_cache_view(&mut c);
            bench.read_reverse(4).mbps()
        };
        let osonly = run(Mode::OsOnly);
        let crossp = run(Mode::PredictOpt);
        assert!(
            crossp > osonly * 1.5,
            "factor {factor}: reverse CrossP {crossp:.0} vs OSonly {osonly:.0} MB/s"
        );
    }
}
